#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/labeling.hpp"
#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

// End-to-end coverage for the lptspd socket front-end: real TCP over
// loopback, one in-process server per fixture. The acceptance-critical
// properties — malformed frames and over-backpressure submissions produce
// typed responses, never a crash, hang, or unbounded buffering — are
// asserted here.

/// Raw blocking TCP socket for tests that must send bytes the
/// LabelingClient refuses to produce (malformed frames).
class RawSocket {
 public:
  explicit RawSocket(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);
  }
  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t wrote = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      ASSERT_GT(wrote, 0);
      sent += static_cast<std::size_t>(wrote);
    }
  }

  /// Half-close the write side (classic pipelined batch-then-drain).
  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  /// Read until EOF (the server closes after a protocol fault).
  std::vector<std::uint8_t> read_to_eof() {
    std::vector<std::uint8_t> bytes;
    std::uint8_t buffer[4096];
    while (true) {
      const ssize_t got = ::read(fd_, buffer, sizeof(buffer));
      if (got <= 0) break;
      bytes.insert(bytes.end(), buffer, buffer + got);
    }
    return bytes;
  }

 private:
  int fd_ = -1;
};

class NetServerTest : public ::testing::Test {
 protected:
  void start(LabelingServer::Options server_options = {},
             BatchSolver::Options solver_options = {}) {
    solver_ = std::make_unique<BatchSolver>(solver_options);
    server_ = std::make_unique<LabelingServer>(*solver_, server_options);
    server_->start();
  }

  SolveRequest request_for(const Graph& graph, std::uint64_t id,
                           const PVec& p = PVec::L21()) const {
    SolveRequest request;
    request.graph = graph;
    request.p = p;
    request.id = id;
    return request;
  }

  std::unique_ptr<BatchSolver> solver_;
  std::unique_ptr<LabelingServer> server_;
};

TEST_F(NetServerTest, SolvesOverLoopbackAndVerifies) {
  start();
  LabelingClient client;
  client.connect("127.0.0.1", server_->port());

  Rng rng(3);
  const Graph graph = random_with_diameter_at_most(14, 2, 0.3, rng);
  const SolveResponse response = client.solve(request_for(graph, 42));
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_EQ(response.id, 42u);
  ASSERT_EQ(response.labeling.labels.size(), static_cast<std::size_t>(graph.n()));
  EXPECT_TRUE(is_valid_labeling(graph, PVec::L21(), response.labeling));
  EXPECT_EQ(response.labeling.span(), response.span);
  client.shutdown();
}

TEST_F(NetServerTest, PipelinedResponsesMatchRequestsOutOfOrder) {
  start();
  LabelingClient client;
  client.connect("127.0.0.1", server_->port());

  Rng rng(5);
  std::vector<Graph> graphs;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    graphs.push_back(random_with_diameter_at_most(10 + static_cast<int>(id), 2, 0.3, rng));
    client.submit(request_for(graphs.back(), id));
  }
  // Wait in reverse submission order: the client must match by id even
  // when the server completed in a different order.
  for (std::uint64_t id = 6; id >= 1; --id) {
    const SolveResponse response = client.wait(id);
    EXPECT_EQ(response.id, id);
    ASSERT_TRUE(response.ok()) << response.message;
    EXPECT_TRUE(is_valid_labeling(graphs[static_cast<std::size_t>(id - 1)], PVec::L21(),
                                  response.labeling));
  }
  client.shutdown();
}

TEST_F(NetServerTest, IsomorphicRepeatIsServedFromCacheOverTheWire) {
  start();
  LabelingClient client;
  client.connect("127.0.0.1", server_->port());

  Rng rng(7);
  const Graph graph = random_with_diameter_at_most(16, 2, 0.3, rng);
  const SolveResponse first = client.solve(request_for(graph, 1));
  ASSERT_TRUE(first.ok());
  const SolveResponse second =
      client.solve(request_for(relabel(graph, rng.permutation(graph.n())), 2));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.source, ResponseSource::ResultCache);
  EXPECT_EQ(second.span, first.span);
  EXPECT_EQ(solver_->engine_solves(), 1u);
  client.shutdown();
}

TEST_F(NetServerTest, InvalidRequestsGetTypedStatusesAndTheConnectionSurvives) {
  start();
  LabelingClient client;
  client.connect("127.0.0.1", server_->port());

  Graph disconnected(6);
  disconnected.add_edge(0, 1);
  const SolveResponse bad = client.solve(request_for(disconnected, 10));
  EXPECT_EQ(bad.status, SolveStatus::Disconnected);
  EXPECT_FALSE(bad.message.empty());

  const SolveResponse metric =
      client.solve(request_for(complete_graph(5), 11, PVec({3, 1})));
  EXPECT_EQ(metric.status, SolveStatus::MetricConditionViolated);

  // The same connection still serves good requests afterwards.
  const SolveResponse good = client.solve(request_for(complete_graph(5), 12));
  EXPECT_TRUE(good.ok());
  client.shutdown();
}

TEST_F(NetServerTest, MalformedFrameGetsTypedErrorThenClose) {
  start();
  RawSocket raw(server_->port());
  std::vector<std::uint8_t> bytes;
  encode_hello(bytes);
  // A frame with a valid length prefix but an unknown message type.
  bytes.insert(bytes.end(), {3, 0, 0, 0, 0x6f, 0xde, 0xad});
  raw.send(bytes);

  const std::vector<std::uint8_t> reply = raw.read_to_eof();  // server must close
  FrameReader reader;
  reader.feed(reply.data(), reply.size());
  DecodeResult result;
  ASSERT_TRUE(reader.next(result));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.message.type, MessageType::HelloAck);
  ASSERT_TRUE(reader.next(result));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.message.type, MessageType::Error);
  EXPECT_EQ(result.message.error_fault, WireFault::BadType);
  EXPECT_FALSE(result.message.error_message.empty());
  EXPECT_GE(server_->counters().protocol_errors, 1u);
}

TEST_F(NetServerTest, BadMagicIsRefusedBeforeAnySolving) {
  start();
  RawSocket raw(server_->port());
  std::vector<std::uint8_t> hello;
  encode_hello(hello);
  hello[5] ^= 0xff;  // corrupt the magic
  raw.send(hello);
  const std::vector<std::uint8_t> reply = raw.read_to_eof();
  FrameReader reader;
  reader.feed(reply.data(), reply.size());
  DecodeResult result;
  ASSERT_TRUE(reader.next(result));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.message.type, MessageType::Error);
  EXPECT_EQ(result.message.error_fault, WireFault::BadMagic);
  EXPECT_EQ(server_->counters().requests_submitted, 0u);
}

TEST_F(NetServerTest, TruncatedConnectionDoesNotHangTheServer) {
  start();
  {
    RawSocket raw(server_->port());
    std::vector<std::uint8_t> hello;
    encode_hello(hello);
    raw.send(hello);
    // Announce a large frame, send only half of it, then vanish.
    SolveRequest request = request_for(complete_graph(20), 5);
    std::vector<std::uint8_t> frame;
    encode_request(frame, request);
    frame.resize(frame.size() / 2);
    raw.send(frame);
  }  // destructor closes mid-frame
  // The server must shrug it off and keep serving new clients.
  LabelingClient client;
  client.connect("127.0.0.1", server_->port());
  const SolveResponse response = client.solve(request_for(complete_graph(6), 6));
  EXPECT_TRUE(response.ok());
  client.shutdown();
}

TEST_F(NetServerTest, HalfCloseStillDrainsPipelinedRequests) {
  start();
  RawSocket raw(server_->port());
  std::vector<std::uint8_t> bytes;
  encode_hello(bytes);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    SolveRequest request = request_for(complete_graph(5 + static_cast<int>(id)), id);
    encode_request(bytes, request);
  }
  raw.send(bytes);
  // EOF may arrive in the same readable batch as the frames; the server
  // must answer everything before closing, exactly as for a Shutdown
  // frame.
  raw.shutdown_write();
  const std::vector<std::uint8_t> reply = raw.read_to_eof();
  FrameReader reader;
  reader.feed(reply.data(), reply.size());
  DecodeResult result;
  ASSERT_TRUE(reader.next(result));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.message.type, MessageType::HelloAck);
  std::set<std::uint64_t> answered;
  while (reader.next(result)) {
    ASSERT_TRUE(result.ok()) << result.detail;
    ASSERT_EQ(result.message.type, MessageType::Response);
    EXPECT_TRUE(result.message.response.ok()) << result.message.response.message;
    answered.insert(result.message.response.id);
  }
  EXPECT_EQ(answered, (std::set<std::uint64_t>{1, 2, 3}));
}

TEST_F(NetServerTest, OverInflightLimitRequestsAreRejectedTyped) {
  LabelingServer::Options server_options;
  server_options.max_inflight_per_connection = 1;
  BatchSolver::Options solver_options;
  // Unique graphs + a real race deadline: each solve occupies the single
  // in-flight slot long enough that the pipelined burst behind it is
  // answered by admission control, not by the solver getting there first.
  solver_options.portfolio.deadline = std::chrono::milliseconds{150};
  start(server_options, solver_options);

  LabelingClient client;
  client.connect("127.0.0.1", server_->port());
  Rng rng(11);
  constexpr std::uint64_t kBurst = 6;
  for (std::uint64_t id = 1; id <= kBurst; ++id) {
    client.submit(request_for(random_with_diameter_at_most(40, 2, 0.2, rng), id));
  }
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::vector<bool> seen(kBurst + 1, false);
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    const SolveResponse response = client.next();
    ASSERT_GE(response.id, 1u);
    ASSERT_LE(response.id, kBurst);
    EXPECT_FALSE(seen[response.id]) << "duplicate response id";
    seen[response.id] = true;
    if (response.status == SolveStatus::RejectedOverload) {
      ++rejected;
      EXPECT_FALSE(response.ok());
      EXPECT_FALSE(response.message.empty());
    } else {
      EXPECT_TRUE(response.ok()) << response.message;
      ++ok;
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(ok + rejected, kBurst);
  EXPECT_EQ(server_->counters().rejected_inflight, rejected);
  client.shutdown();
}

TEST_F(NetServerTest, SolverLevelAdmissionControlAnswersTyped) {
  LabelingServer::Options server_options;
  BatchSolver::Options solver_options;
  solver_options.max_pending_requests = 1;
  solver_options.request_workers = 1;
  solver_options.portfolio.deadline = std::chrono::milliseconds{150};
  start(server_options, solver_options);

  LabelingClient client;
  client.connect("127.0.0.1", server_->port());
  Rng rng(13);
  constexpr std::uint64_t kBurst = 5;
  for (std::uint64_t id = 1; id <= kBurst; ++id) {
    client.submit(request_for(random_with_diameter_at_most(40, 2, 0.2, rng), id));
  }
  std::uint64_t rejected = 0;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    const SolveResponse response = client.next();
    if (response.status == SolveStatus::RejectedOverload) ++rejected;
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(solver_->rejected_overload(), rejected);
  client.shutdown();
}

TEST_F(NetServerTest, StatsScrapeReflectsTheWorkload) {
  start();
  LabelingClient client;
  client.connect("127.0.0.1", server_->port());

  Rng rng(17);
  const Graph graph = random_with_diameter_at_most(14, 2, 0.3, rng);
  ASSERT_TRUE(client.solve(request_for(graph, 1)).ok());  // cold: engine race
  const SolveResponse warm =
      client.solve(request_for(relabel(graph, rng.permutation(graph.n())), 2));
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm.source, ResponseSource::ResultCache);

  // The JSON view carries the counters the workload just produced.
  const std::string json = client.stats(StatsFormat::Json);
  EXPECT_NE(json.find("\"requests_total\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_result_hits\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_result_misses\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"engine_solves\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"net_requests_submitted\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"request_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos) << json;

  // Engine-race latency histogram: present, one recorded race.
  const obs::MetricsSnapshot snap = solver_->metrics_registry().snapshot();
  ASSERT_NE(snap.histogram("engine_race_ns"), nullptr);
  EXPECT_EQ(snap.histogram("engine_race_ns")->count, 1u);
  EXPECT_GT(snap.histogram("engine_race_ns")->quantile(0.5), 0u);

  // The other render formats are served on the same connection, and the
  // traces view shows both requests with their distinguishing spans.
  EXPECT_NE(client.stats(StatsFormat::Prometheus).find("lptsp_requests_total 2"),
            std::string::npos);
  EXPECT_NE(client.stats(StatsFormat::Text).find("requests_total"), std::string::npos);
  const std::string traces = client.stats(StatsFormat::Traces);
  EXPECT_NE(traces.find("\"stage\":\"engine-race\""), std::string::npos) << traces;
  EXPECT_NE(traces.find("\"winner\":true"), std::string::npos) << traces;
  EXPECT_NE(traces.find("\"result\":\"result-cache\""), std::string::npos) << traces;

  EXPECT_EQ(server_->counters().stats_requests, 4u);
  client.shutdown();
}

TEST_F(NetServerTest, V1ClientsStillInteroperate) {
  start();
  RawSocket raw(server_->port());
  std::vector<std::uint8_t> bytes;
  encode_hello(bytes, 1);  // a pre-stats client
  SolveRequest request = request_for(complete_graph(5), 77);
  encode_request(bytes, request);
  raw.send(bytes);
  raw.shutdown_write();

  const std::vector<std::uint8_t> reply = raw.read_to_eof();
  FrameReader reader;
  reader.feed(reply.data(), reply.size());
  DecodeResult result;
  ASSERT_TRUE(reader.next(result));
  ASSERT_TRUE(result.ok()) << result.detail;
  ASSERT_EQ(result.message.type, MessageType::HelloAck);
  // The ack mirrors the client's version so a strict v1 decoder accepts it.
  EXPECT_EQ(result.message.version, 1u);
  ASSERT_TRUE(reader.next(result));
  ASSERT_TRUE(result.ok()) << result.detail;
  ASSERT_EQ(result.message.type, MessageType::Response);
  EXPECT_EQ(result.message.response.id, 77u);
  EXPECT_TRUE(result.message.response.ok());
}

TEST_F(NetServerTest, StatsOnAV1ConnectionIsRefusedTyped) {
  start();
  RawSocket raw(server_->port());
  std::vector<std::uint8_t> bytes;
  encode_hello(bytes, 1);
  encode_stats_request(bytes, StatsFormat::Json);
  raw.send(bytes);

  const std::vector<std::uint8_t> reply = raw.read_to_eof();  // server closes
  FrameReader reader;
  reader.feed(reply.data(), reply.size());
  DecodeResult result;
  ASSERT_TRUE(reader.next(result));
  ASSERT_EQ(result.message.type, MessageType::HelloAck);
  ASSERT_TRUE(reader.next(result));
  ASSERT_TRUE(result.ok()) << result.detail;
  ASSERT_EQ(result.message.type, MessageType::Error);
  EXPECT_EQ(result.message.error_fault, WireFault::Malformed);
  EXPECT_NE(result.message.error_message.find("version"), std::string::npos);
  EXPECT_EQ(server_->counters().stats_requests, 0u);
}

TEST_F(NetServerTest, TracedClientAndServerShareOneTraceId) {
  start();
  ClientOptions options;
  options.trace = true;
  LabelingClient client(options);
  client.connect("127.0.0.1", server_->port());
  EXPECT_EQ(client.negotiated_version(), kWireVersion);

  Rng rng(19);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  const SolveResponse response = client.solve(request_for(graph, 31));
  ASSERT_TRUE(response.ok()) << response.message;
  // The v4 server echoes where its time went; the solve actually ran, so
  // service time is nonzero.
  EXPECT_GT(response.server_service_ns, 0u);

  // Client side: one trace, client-owned spans plus the nested echo.
  const std::vector<obs::Trace> client_traces = client.traces().snapshot();
  ASSERT_EQ(client_traces.size(), 1u);
  const obs::Trace& mine = client_traces[0];
  EXPECT_EQ(mine.request_id, 31u);
  EXPECT_NE(mine.trace_id, 0u);
  EXPECT_TRUE(mine.sampled);
  const auto has_stage = [](const obs::Trace& trace, obs::Stage stage) {
    for (const obs::Span& span : trace.spans) {
      if (span.stage == stage) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_stage(mine, obs::Stage::ClientConnect));
  EXPECT_TRUE(has_stage(mine, obs::Stage::ClientSerialize));
  EXPECT_TRUE(has_stage(mine, obs::Stage::ClientSend));
  EXPECT_TRUE(has_stage(mine, obs::Stage::ServerTurnaround));
  EXPECT_TRUE(has_stage(mine, obs::Stage::ClientDeserialize));
  EXPECT_TRUE(has_stage(mine, obs::Stage::ServerService));

  // Server side: its ring adopted the SAME id — the joined trace.
  const std::vector<obs::Trace> server_traces = solver_->traces().snapshot();
  ASSERT_EQ(server_traces.size(), 1u);
  EXPECT_EQ(server_traces[0].trace_id, mine.trace_id);
  EXPECT_TRUE(server_traces[0].sampled);
  EXPECT_EQ(server_traces[0].request_id, 31u);
  EXPECT_TRUE(has_stage(server_traces[0], obs::Stage::CacheLookup));

  // Both rings dump the shared id.
  const std::string expected = "\"trace_id\":" + std::to_string(mine.trace_id);
  EXPECT_NE(client.traces().dump_json().find(expected), std::string::npos);
  EXPECT_NE(client.stats(StatsFormat::Traces).find(expected), std::string::npos);
  client.shutdown();
}

TEST_F(NetServerTest, JournalIsScrapableOnV4AndRefusedBelow) {
  start();
  obs::journal().clear();
  obs::journal().emit(obs::EventType::StoreHealed, obs::EventLevel::Info);
  {
    LabelingClient client;
    client.connect("127.0.0.1", server_->port());
    const std::string journal = client.stats(StatsFormat::Journal);
    EXPECT_NE(journal.find("\"type\":\"store-healed\""), std::string::npos) << journal;
    client.shutdown();
  }
  // A v3 peer asking for the journal format gets a typed refusal naming
  // the version, exactly like stats-on-v1.
  RawSocket raw(server_->port());
  std::vector<std::uint8_t> bytes;
  encode_hello(bytes, 3);
  encode_stats_request(bytes, StatsFormat::Journal);
  raw.send(bytes);
  const std::vector<std::uint8_t> reply = raw.read_to_eof();
  FrameReader reader;
  reader.feed(reply.data(), reply.size());
  DecodeResult result;
  ASSERT_TRUE(reader.next(result));
  ASSERT_EQ(result.message.type, MessageType::HelloAck);
  EXPECT_EQ(result.message.version, 3u);
  ASSERT_TRUE(reader.next(result));
  ASSERT_TRUE(result.ok()) << result.detail;
  ASSERT_EQ(result.message.type, MessageType::Error);
  EXPECT_EQ(result.message.error_fault, WireFault::Malformed);
  EXPECT_NE(result.message.error_message.find("version 4"), std::string::npos)
      << result.message.error_message;
}

TEST_F(NetServerTest, V3ClientsNeverSeeTraceContext) {
  // A traced client on a v3 connection suppresses the new flag bits
  // entirely — the old-decoder interop pin for wire v4.
  start();
  RawSocket raw(server_->port());
  std::vector<std::uint8_t> bytes;
  encode_hello(bytes, 3);
  SolveRequest request = request_for(complete_graph(5), 88);
  request.trace_id = 0x1234u;  // would need v4; must be dropped at encode
  request.trace_sampled = true;
  encode_request(bytes, request, 3);
  raw.send(bytes);
  raw.shutdown_write();
  const std::vector<std::uint8_t> reply = raw.read_to_eof();
  FrameReader reader;
  reader.feed(reply.data(), reply.size());
  DecodeResult result;
  ASSERT_TRUE(reader.next(result));
  ASSERT_EQ(result.message.type, MessageType::HelloAck);
  EXPECT_EQ(result.message.version, 3u);
  ASSERT_TRUE(reader.next(result));
  ASSERT_TRUE(result.ok()) << result.detail;
  ASSERT_EQ(result.message.type, MessageType::Response);
  EXPECT_TRUE(result.message.response.ok());
  // And the response carries no v4 server-timing echo for this peer.
  EXPECT_EQ(result.message.response.server_queue_ns, 0u);
  EXPECT_EQ(result.message.response.server_service_ns, 0u);
}

TEST_F(NetServerTest, WireFaultCountersTickByKind) {
  start();
  {
    RawSocket raw(server_->port());
    std::vector<std::uint8_t> hello;
    encode_hello(hello);
    hello[5] ^= 0xff;  // BadMagic
    raw.send(hello);
    (void)raw.read_to_eof();
  }
  {
    RawSocket raw(server_->port());
    std::vector<std::uint8_t> bytes;
    encode_hello(bytes);
    bytes.insert(bytes.end(), {3, 0, 0, 0, 0x6f, 0xde, 0xad});  // BadType
    raw.send(bytes);
    (void)raw.read_to_eof();
  }
  const obs::MetricsSnapshot snap = solver_->metrics_registry().snapshot();
  EXPECT_EQ(snap.counter_or("net_wire_fault_bad_magic"), 1u);
  EXPECT_EQ(snap.counter_or("net_wire_fault_bad_type"), 1u);
  EXPECT_EQ(snap.counter_or("net_wire_fault_truncated"), 0u);
  EXPECT_EQ(snap.counter_or("net_protocol_errors"), 2u);
  EXPECT_EQ(server_->counters().protocol_errors, 2u);
}

TEST_F(NetServerTest, ServerTeardownFreesTheRegistryNames) {
  // The server deregisters its net_* metrics on destruction, so a second
  // server (same solver) can register the same names — the restart path.
  BatchSolver solver(BatchSolver::Options{});
  {
    LabelingServer first(solver);
    first.start();
    EXPECT_GE(solver.metrics_registry().snapshot().counters.size(), 1u);
  }
  LabelingServer second(solver);
  second.start();
  LabelingClient client;
  client.connect("127.0.0.1", second.port());
  EXPECT_TRUE(client.solve(request_for(complete_graph(5), 1)).ok());
  EXPECT_NE(client.stats(StatsFormat::Json).find("\"net_connections_accepted\":1"),
            std::string::npos);
  client.shutdown();
}

TEST_F(NetServerTest, CountersAndLifecycle) {
  start();
  {
    LabelingClient client;
    client.connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.solve(request_for(complete_graph(5), 1)).ok());
    client.shutdown();
  }
  const LabelingServer::Counters counters = server_->counters();
  EXPECT_EQ(counters.connections_accepted, 1u);
  EXPECT_GE(counters.frames_received, 2u);  // hello + request (+ shutdown)
  EXPECT_EQ(counters.requests_submitted, 1u);
  EXPECT_EQ(counters.responses_sent, 1u);
  EXPECT_EQ(counters.protocol_errors, 0u);

  server_->stop();
  server_->stop();  // idempotent
  EXPECT_FALSE(server_->running());
  LabelingClient late;
  EXPECT_THROW(late.connect("127.0.0.1", server_->port()), std::runtime_error);
}

}  // namespace
}  // namespace lptsp
