#include <gtest/gtest.h>

#include <map>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(Reduction, FigureOneWeights) {
  // Theorem 2 on the paper's Figure-1 example: weights p1 x5, p2 x3, p3 x2.
  const Graph graph = fig1_graph();
  const PVec p({4, 3, 2});  // pmax=4 <= 2*pmin=4
  const auto reduced = reduce_to_path_tsp(graph, p);
  std::map<Weight, int> histogram;
  for (int u = 0; u < 5; ++u) {
    for (int v = u + 1; v < 5; ++v) ++histogram[reduced.instance.weight(u, v)];
  }
  EXPECT_EQ(histogram[4], 5);
  EXPECT_EQ(histogram[3], 3);
  EXPECT_EQ(histogram[2], 2);
}

TEST(Reduction, ProducesMetricInstance) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = random_with_diameter_at_most(10, 3, 0.2, rng);
    const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}));
    EXPECT_TRUE(reduced.instance.is_metric());
  }
}

TEST(Reduction, WeightsStayWithinPminBand) {
  Rng rng(5);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  const PVec p = PVec::Lpq(3, 2);
  const auto reduced = reduce_to_path_tsp(graph, p);
  EXPECT_GE(reduced.instance.min_weight(), p.pmin());
  EXPECT_LE(reduced.instance.max_weight(), 2 * p.pmin());
}

TEST(Reduction, DistanceMatrixIsReturned) {
  const Graph graph = path_graph(3);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  EXPECT_EQ(reduced.dist.at(0, 2), 2);
  EXPECT_EQ(reduced.instance.weight(0, 2), 1);
  EXPECT_EQ(reduced.instance.weight(0, 1), 2);
}

TEST(Reduction, RejectsDisconnectedGraphs) {
  Graph graph(4);
  graph.add_edge(0, 1);
  EXPECT_THROW(reduce_to_path_tsp(graph, PVec::L21()), precondition_error);
}

TEST(Reduction, RejectsDiameterLargerThanK) {
  const Graph graph = path_graph(5);  // diameter 4
  EXPECT_THROW(reduce_to_path_tsp(graph, PVec::L21()), precondition_error);
}

TEST(Reduction, RejectsConditionViolatingP) {
  const Graph graph = star_graph(5);  // diameter 2
  EXPECT_THROW(reduce_to_path_tsp(graph, PVec({3, 1})), precondition_error);
}

TEST(Reduction, UncheckedAllowsConditionViolation) {
  const Graph graph = star_graph(5);
  const auto reduced = reduce_to_path_tsp_unchecked(graph, PVec({3, 1}));
  EXPECT_EQ(reduced.instance.weight(0, 1), 3);  // hub-leaf at distance 1
  EXPECT_EQ(reduced.instance.weight(1, 2), 1);  // leaves at distance 2
}

TEST(Reduction, UncheckedStillRequiresDiameterFit) {
  const Graph graph = path_graph(6);
  EXPECT_THROW(reduce_to_path_tsp_unchecked(graph, PVec({3, 1})), precondition_error);
}

TEST(Reduction, ParallelDistancesMatchSerial) {
  Rng rng(7);
  const Graph graph = random_with_diameter_at_most(20, 3, 0.15, rng);
  const PVec p({2, 2, 1});
  const auto serial = reduce_to_path_tsp(graph, p, 1);
  const auto parallel = reduce_to_path_tsp(graph, p, 0);
  for (int u = 0; u < graph.n(); ++u) {
    for (int v = 0; v < graph.n(); ++v) {
      EXPECT_EQ(serial.instance.weight(u, v), parallel.instance.weight(u, v));
    }
  }
}

TEST(Reduction, SingleVertexGraph) {
  const auto reduced = reduce_to_path_tsp(Graph(1), PVec::L21());
  EXPECT_EQ(reduced.instance.n(), 1);
}

TEST(Reduction, CompleteGraphAllWeightsP1) {
  const auto reduced = reduce_to_path_tsp(complete_graph(6), PVec::L21());
  EXPECT_EQ(reduced.instance.min_weight(), 2);
  EXPECT_EQ(reduced.instance.max_weight(), 2);
}

}  // namespace
}  // namespace lptsp
