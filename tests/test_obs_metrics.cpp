#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp::obs {
namespace {

// ---------------------------------------------------------------- buckets

TEST(LatencyHistogram, BucketBoundariesAtPowersOfTwo) {
  // Bucket b holds values with bit_width == b: [2^(b-1), 2^b).
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3);
  for (int b = 2; b < 62; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    EXPECT_EQ(LatencyHistogram::bucket_of(lo), b) << "floor of bucket " << b;
    EXPECT_EQ(LatencyHistogram::bucket_of(lo - 1), b - 1) << "just below bucket " << b;
    EXPECT_EQ(LatencyHistogram::bucket_of(2 * lo - 1), b) << "ceiling of bucket " << b;
  }
  // The last bucket absorbs everything huge.
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}), LatencyHistogram::kBuckets - 1);

  for (int b = 0; b < LatencyHistogram::kBuckets - 1; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_floor(b)), b);
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_ceiling(b)), b);
  }
}

TEST(LatencyHistogram, RecordCountsSumAndMax) {
  LatencyHistogram hist;
  hist.record(0);
  hist.record(1);
  hist.record(1000);
  hist.record(7);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 1008u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.counts[0], 1u);                                // the 0
  EXPECT_EQ(snap.counts[1], 1u);                                // the 1
  EXPECT_EQ(snap.counts[3], 1u);                                // 7 in [4,8)
  EXPECT_EQ(snap.counts[LatencyHistogram::bucket_of(1000)], 1u);
}

TEST(LatencyHistogram, EmptyAndSingleSampleEdges) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.snapshot().quantile(0.5), 0u);
  EXPECT_EQ(hist.snapshot().quantile(0.99), 0u);
  EXPECT_EQ(hist.snapshot().mean(), 0.0);

  hist.record(12345);
  const HistogramSnapshot snap = hist.snapshot();
  // With one sample every quantile is that sample, exactly (the max cap
  // beats bucket interpolation).
  EXPECT_EQ(snap.quantile(0.0), 12345u);
  EXPECT_EQ(snap.quantile(0.5), 12345u);
  EXPECT_EQ(snap.quantile(1.0), 12345u);
}

TEST(LatencyHistogram, QuantileAtExactBucketBoundaries) {
  // All mass in one bucket whose floor/ceiling are exact powers of two:
  // every quantile must stay inside [floor, ceiling] of that bucket and
  // never exceed the observed max even mid-interpolation.
  LatencyHistogram hist;
  const std::uint64_t floor = LatencyHistogram::bucket_floor(10);    // 512
  const std::uint64_t ceiling = LatencyHistogram::bucket_ceiling(10);  // 1023
  for (int i = 0; i < 100; ++i) hist.record(floor);
  const HistogramSnapshot at_floor = hist.snapshot();
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const std::uint64_t estimate = at_floor.quantile(q);
    EXPECT_GE(estimate, floor) << "q=" << q;
    // Every sample IS the observed max, so the cap pins the answer.
    EXPECT_EQ(estimate, floor) << "q=" << q;
  }

  // At the ceiling the bucket cannot tell 1023 from 512 — interpolation
  // may answer anywhere inside [floor, ceiling], but never outside it,
  // and q=1.0 is pinned to the exact observed max.
  LatencyHistogram spread;
  for (int i = 0; i < 100; ++i) spread.record(ceiling);
  const HistogramSnapshot at_ceiling = spread.snapshot();
  EXPECT_GE(at_ceiling.quantile(0.5), floor);
  EXPECT_LE(at_ceiling.quantile(0.5), ceiling);
  EXPECT_EQ(at_ceiling.quantile(1.0), ceiling);
}

TEST(LatencyHistogram, InterpolationNeverExceedsObservedMax) {
  // 99 tiny samples and one at the very bottom of a huge bucket: naive
  // within-bucket interpolation of the top quantile would report a value
  // deep inside [2^19, 2^20), far above anything observed. The snapshot
  // caps at max.
  LatencyHistogram hist;
  for (int i = 0; i < 99; ++i) hist.record(10);
  const std::uint64_t lone_max = LatencyHistogram::bucket_floor(20) + 1;
  hist.record(lone_max);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.max, lone_max);
  EXPECT_LE(snap.quantile(0.995), lone_max);
  EXPECT_EQ(snap.quantile(1.0), lone_max);
  // And the low quantiles are untouched by the outlier.
  EXPECT_LE(snap.quantile(0.5), LatencyHistogram::bucket_ceiling(4));
}

// -------------------------------------------------------------- quantiles

TEST(LatencyHistogram, QuantilesTrackSortedOracleWithinOneBucket) {
  Rng rng(7);
  LatencyHistogram hist;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    // Spread across several orders of magnitude, like real latencies.
    const std::uint64_t value = rng.next() % (std::uint64_t{1} << (10 + rng.next() % 16));
    values.push_back(value);
    hist.record(value);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snap = hist.snapshot();
  for (const double q : {0.50, 0.90, 0.99}) {
    const std::uint64_t oracle =
        values[std::min(values.size() - 1,
                        static_cast<std::size_t>(q * static_cast<double>(values.size())))];
    const std::uint64_t estimate = snap.quantile(q);
    // Log2 buckets bound the estimate to within one bucket of truth:
    // same bucket or adjacent (interpolation can land either side).
    const int oracle_bucket = LatencyHistogram::bucket_of(oracle);
    const int estimate_bucket = LatencyHistogram::bucket_of(estimate);
    EXPECT_LE(std::abs(oracle_bucket - estimate_bucket), 1)
        << "q=" << q << " oracle=" << oracle << " estimate=" << estimate;
  }
  // Monotone in q, and capped by the true max.
  std::uint64_t previous = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const std::uint64_t estimate = snap.quantile(q);
    EXPECT_GE(estimate, previous);
    EXPECT_LE(estimate, snap.max);
    previous = estimate;
  }
  EXPECT_EQ(snap.quantile(1.0), snap.max);
}

// ------------------------------------------------------------ concurrency

TEST(LatencyHistogram, ConcurrentRecordLosesNothing) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const HistogramSnapshot snap = hist.snapshot();
  constexpr std::uint64_t kTotal = std::uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(snap.count, kTotal);
  EXPECT_EQ(snap.sum, kTotal * (kTotal - 1) / 2);  // sum of 0..kTotal-1
  EXPECT_EQ(snap.max, kTotal - 1);
}

TEST(Counter, ConcurrentAddIsExact) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 50000; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 400000u);
}

// ------------------------------------------------------------------ merge

TEST(HistogramSnapshot, MergeIsAssociativeAndOrderFree) {
  Rng rng(11);
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram c;
  for (int i = 0; i < 300; ++i) {
    a.record(rng.next() % 100000);
    b.record(rng.next() % 4000);
    c.record(rng.next() % 90000000);
  }
  const HistogramSnapshot sa = a.snapshot();
  const HistogramSnapshot sb = b.snapshot();
  const HistogramSnapshot sc = c.snapshot();

  HistogramSnapshot left = sa;   // (a + b) + c
  left.merge(sb);
  left.merge(sc);
  HistogramSnapshot right = sb;  // a + (b + c)
  right.merge(sc);
  HistogramSnapshot outer = sa;
  outer.merge(right);

  EXPECT_EQ(left.count, outer.count);
  EXPECT_EQ(left.sum, outer.sum);
  EXPECT_EQ(left.max, outer.max);
  EXPECT_EQ(left.counts, outer.counts);
  EXPECT_EQ(left.count, sa.count + sb.count + sc.count);
  EXPECT_EQ(left.quantile(0.5), outer.quantile(0.5));
}

// --------------------------------------------------------------- registry

TEST(MetricRegistry, DuplicateNameThrowsAcrossKinds) {
  MetricRegistry registry;
  Counter counter;
  LatencyHistogram hist;
  registry.register_counter("events", &counter);
  EXPECT_THROW(registry.register_counter("events", &counter), precondition_error);
  // Name collisions are rejected across kinds too: one namespace.
  EXPECT_THROW(registry.register_gauge("events", [] { return 0; }), precondition_error);
  EXPECT_THROW(registry.register_histogram("events", &hist), precondition_error);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricRegistry, DeregisterRemovesOnlyThatOwner) {
  MetricRegistry registry;
  Counter mine;
  Counter theirs;
  const int owner_a = 0;
  const int owner_b = 0;
  registry.register_counter("a", &mine, &owner_a);
  registry.register_gauge("a_gauge", [] { return 5; }, &owner_a);
  registry.register_counter("b", &theirs, &owner_b);
  EXPECT_EQ(registry.size(), 3u);

  registry.deregister(&owner_a);
  EXPECT_EQ(registry.size(), 1u);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "b");
  // The freed name is reusable.
  registry.register_counter("a", &mine, &owner_a);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricRegistry, SnapshotReadsLiveValuesSorted) {
  MetricRegistry registry;
  Counter zebra;
  Counter alpha;
  LatencyHistogram hist;
  std::int64_t depth = 3;
  registry.register_counter("zebra", &zebra);
  registry.register_counter("alpha", &alpha);
  registry.register_gauge("depth", [&depth] { return depth; });
  registry.register_histogram("lat_ns", &hist);

  alpha.add(2);
  zebra.add(7);
  hist.record(100);
  depth = 9;

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");  // sorted by name
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "zebra");
  EXPECT_EQ(snap.counters[1].value, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 9);  // gauge callback reads at snapshot time
  EXPECT_EQ(snap.counter_or("alpha"), 2u);
  EXPECT_EQ(snap.counter_or("missing", 42), 42u);
  ASSERT_NE(snap.histogram("lat_ns"), nullptr);
  EXPECT_EQ(snap.histogram("lat_ns")->count, 1u);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

// ---------------------------------------------------------- serialization

TEST(MetricsSnapshot, SerializationsContainEveryMetric) {
  MetricRegistry registry;
  Counter hits;
  LatencyHistogram lat;
  registry.register_counter("cache_hits", &hits);
  registry.register_gauge("queue_depth", [] { return 4; });
  registry.register_histogram("solve_ns", &lat);
  hits.add(3);
  lat.record(1500);
  lat.record(900);

  const MetricsSnapshot snap = registry.snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"cache_hits\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_depth\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"solve_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_ns\":1500"), std::string::npos) << json;

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("lptsp_cache_hits 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("lptsp_queue_depth 4"), std::string::npos) << prom;
  EXPECT_NE(prom.find("lptsp_solve_ns_bucket"), std::string::npos) << prom;
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos) << prom;
  EXPECT_NE(prom.find("lptsp_solve_ns_count 2"), std::string::npos) << prom;

  const std::string text = snap.to_text();
  EXPECT_NE(text.find("cache_hits"), std::string::npos);
  EXPECT_NE(text.find("solve_ns"), std::string::npos);

  const std::string line = snap.to_logline();
  EXPECT_NE(line.find("cache_hits=3"), std::string::npos) << line;
  EXPECT_NE(line.find("solve_ns_p50="), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << "logline must be one line";
}

TEST(MetricsSnapshot, CarriesMonotonicTimestampAndUptime) {
  MetricRegistry registry;
  const MetricsSnapshot first = registry.snapshot();
  EXPECT_GT(first.timestamp_ns, 0u);
  const MetricsSnapshot second = registry.snapshot();
  EXPECT_GE(second.timestamp_ns, first.timestamp_ns);
  EXPECT_GE(second.uptime_ns, first.uptime_ns);
  // Both serializations surface the anchors for rate-aware consumers.
  EXPECT_NE(first.to_json().find("\"timestamp_ns\":"), std::string::npos);
  EXPECT_NE(first.to_json().find("\"uptime_ns\":"), std::string::npos);
  EXPECT_NE(first.to_prometheus().find("lptsp_snapshot_timestamp_ns "), std::string::npos);
  EXPECT_NE(first.to_prometheus().find("lptsp_uptime_ns "), std::string::npos);
}

TEST(MetricsSnapshot, PrometheusExpositionHasHelpTypeAndMax) {
  MetricRegistry registry;
  Counter hits;
  LatencyHistogram lat;
  registry.register_counter("cache_hits", &hits);
  registry.register_gauge("queue_depth", [] { return 4; });
  registry.register_histogram("solve_ns", &lat);
  hits.add(3);
  lat.record(1500);

  const std::string prom = registry.snapshot().to_prometheus();
  // Every series is announced before its samples, with the right type.
  EXPECT_NE(prom.find("# HELP lptsp_cache_hits "), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE lptsp_cache_hits counter\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE lptsp_queue_depth gauge\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE lptsp_solve_ns histogram\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE lptsp_snapshot_timestamp_ns gauge\n"), std::string::npos);
  // The exact observed max rides along so exposition-based deltas can cap
  // interpolated quantiles like the in-process snapshot does.
  EXPECT_NE(prom.find("lptsp_solve_ns_max 1500\n"), std::string::npos) << prom;
  // HELP precedes TYPE precedes the first sample of each series.
  const std::size_t help_at = prom.find("# HELP lptsp_cache_hits");
  const std::size_t type_at = prom.find("# TYPE lptsp_cache_hits");
  const std::size_t sample_at = prom.find("\nlptsp_cache_hits 3");
  ASSERT_NE(sample_at, std::string::npos) << prom;
  EXPECT_LT(help_at, type_at);
  EXPECT_LT(type_at, sample_at);
}

TEST(MetricsSnapshot, PrometheusNamesAreEscaped) {
  MetricRegistry registry;
  Counter dotted;
  registry.register_counter("store.append.failures-total", &dotted);
  dotted.add(2);
  const std::string prom = registry.snapshot().to_prometheus();
  // '.' and '-' are outside the exposition grammar; they degrade to '_'.
  EXPECT_NE(prom.find("lptsp_store_append_failures_total 2"), std::string::npos) << prom;
  EXPECT_EQ(prom.find("store.append"), std::string::npos) << prom;
}

}  // namespace
}  // namespace lptsp::obs
