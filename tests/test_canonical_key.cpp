#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "service/canonical_key.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(CanonicalForm, IsomorphicRelabelingsCollide) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph graph = random_with_diameter_at_most(14, 2, 0.3, rng);
    const CanonicalForm base = canonical_form(graph);
    ASSERT_TRUE(base.exact);
    for (int shuffle = 0; shuffle < 4; ++shuffle) {
      const std::vector<int> perm = rng.permutation(graph.n());
      const CanonicalForm relabeled = canonical_form(relabel(graph, perm));
      EXPECT_TRUE(relabeled.exact);
      EXPECT_EQ(base.edges, relabeled.edges);
      EXPECT_EQ(base.hash, relabeled.hash);
      EXPECT_EQ(graph_key(base), graph_key(relabeled));
    }
  }
}

TEST(CanonicalForm, DifferentGraphsMiss) {
  // Same n and m, different structure: P4 vs the star K_{1,3}.
  const CanonicalForm path = canonical_form(path_graph(4));
  const CanonicalForm star = canonical_form(star_graph(4));
  EXPECT_NE(path.edges, star.edges);
  EXPECT_NE(graph_key(path), graph_key(star));
}

TEST(CanonicalForm, IndividualizationSeparatesWlEquivalentGraphs) {
  // C6 and 2xC3 are both 2-regular on 6 vertices, so plain WL refinement
  // cannot tell them apart; individualization must.
  const Graph c6 = cycle_graph(6);
  Graph two_triangles(6);
  two_triangles.add_edge(0, 1);
  two_triangles.add_edge(1, 2);
  two_triangles.add_edge(2, 0);
  two_triangles.add_edge(3, 4);
  two_triangles.add_edge(4, 5);
  two_triangles.add_edge(5, 3);
  const CanonicalForm a = canonical_form(c6);
  const CanonicalForm b = canonical_form(two_triangles);
  ASSERT_TRUE(a.exact);
  ASSERT_TRUE(b.exact);
  EXPECT_NE(a.edges, b.edges);
}

TEST(CanonicalForm, VertexTransitiveGraphsStayExact) {
  // Petersen is vertex-transitive (WL sees one class) yet small orbit
  // stabilizers keep the individualization tree tiny.
  Rng rng(3);
  const Graph petersen = petersen_graph();
  const CanonicalForm base = canonical_form(petersen);
  EXPECT_TRUE(base.exact);
  for (int shuffle = 0; shuffle < 5; ++shuffle) {
    const CanonicalForm relabeled =
        canonical_form(relabel(petersen, rng.permutation(petersen.n())));
    EXPECT_TRUE(relabeled.exact);
    EXPECT_EQ(base.edges, relabeled.edges);
  }
}

TEST(CanonicalForm, OrbitPruningKeepsSymmetricFamiliesExact) {
  // Complete graphs, stars, and complete bipartite graphs have factorial
  // automorphism groups; without orbit pruning the branch budget would
  // blow immediately.
  for (const Graph& graph :
       {complete_graph(30), star_graph(30), complete_bipartite(12, 17), complete_graph(1)}) {
    const CanonicalForm form = canonical_form(graph);
    EXPECT_TRUE(form.exact) << "n=" << graph.n() << " m=" << graph.m();
  }
  Rng rng(11);
  const Graph k9 = complete_graph(9);
  const CanonicalForm base = canonical_form(k9);
  const CanonicalForm relabeled = canonical_form(relabel(k9, rng.permutation(9)));
  EXPECT_EQ(base.edges, relabeled.edges);
}

TEST(CanonicalForm, ToCanonicalIsAPermutation) {
  Rng rng(19);
  const Graph graph = random_with_diameter_at_most(12, 3, 0.2, rng);
  const CanonicalForm form = canonical_form(graph);
  std::set<int> seen(form.to_canonical.begin(), form.to_canonical.end());
  EXPECT_EQ(static_cast<int>(seen.size()), graph.n());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), graph.n() - 1);
  // The relabeled graph's edge list must be exactly the canonical edges.
  const Graph canon = relabel(graph, form.to_canonical);
  EXPECT_EQ(canon.edges(), form.edges);
}

TEST(CanonicalForm, BudgetExhaustionIsReportedNotWrong) {
  // A disjoint union of many triangles has orbit structure the cheap
  // interchangeability test cannot fully collapse (classes are unions of
  // several orbits), so a tiny budget must surface exact=false while the
  // relabeling stays a valid permutation.
  Graph many_triangles(18);
  for (int t = 0; t < 6; ++t) {
    many_triangles.add_edge(3 * t, 3 * t + 1);
    many_triangles.add_edge(3 * t + 1, 3 * t + 2);
    many_triangles.add_edge(3 * t + 2, 3 * t);
  }
  CanonicalFormOptions options;
  options.branch_budget = 2;
  const CanonicalForm form = canonical_form(many_triangles, options);
  EXPECT_FALSE(form.exact);
  std::set<int> seen(form.to_canonical.begin(), form.to_canonical.end());
  EXPECT_EQ(seen.size(), form.to_canonical.size());
  const Graph canon = relabel(many_triangles, form.to_canonical);
  EXPECT_EQ(canon.edges(), form.edges);
}

TEST(CanonicalKey, ResultKeySeparatesPVectors) {
  const Graph graph = petersen_graph();
  const CanonicalForm form = canonical_form(graph);
  EXPECT_NE(result_key(form, PVec::L21()), result_key(form, PVec({1, 1})));
  EXPECT_NE(result_key(form, PVec::L21()), result_key(form, PVec({2, 1, 1})));
  EXPECT_EQ(result_key(form, PVec::L21()), result_key(form, PVec({2, 1})));
}

TEST(CanonicalKey, MapLabelsRoundTrip) {
  Rng rng(23);
  const Graph graph = random_with_diameter_at_most(10, 2, 0.35, rng);
  const CanonicalForm form = canonical_form(graph);
  // Distinct labels in canonical space: vertex c gets label 10*c.
  std::vector<Weight> canonical_labels(static_cast<std::size_t>(graph.n()));
  for (int c = 0; c < graph.n(); ++c) canonical_labels[static_cast<std::size_t>(c)] = 10 * c;
  const std::vector<Weight> mapped = map_labels_from_canonical(form, canonical_labels);
  for (int v = 0; v < graph.n(); ++v) {
    EXPECT_EQ(mapped[static_cast<std::size_t>(v)],
              10 * form.to_canonical[static_cast<std::size_t>(v)]);
  }
}

}  // namespace
}  // namespace lptsp
