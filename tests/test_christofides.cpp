#include <gtest/gtest.h>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/christofides.hpp"
#include "tsp/held_karp.hpp"
#include "tsp/lower_bounds.hpp"
#include "tsp/mst.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(Christofides, TinyInstances) {
  EXPECT_EQ(christofides_path(MetricInstance(1)).solution.cost, 0);
  MetricInstance pair(2);
  pair.set_weight(0, 1, 3);
  EXPECT_EQ(christofides_path(pair).solution.cost, 3);
}

TEST(DoubleMst, TinyInstances) {
  EXPECT_EQ(double_mst_path(MetricInstance(1)).cost, 0);
}

class ApproxProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 577 + 29)};
};

TEST_P(ApproxProperty, ChristofidesValidAndBounded) {
  // Reduced labeling instances: metric with two or three weight values.
  const Graph graph = random_with_diameter_at_most(11, 2, 0.3, rng_);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  const ChristofidesResult result = christofides_path(reduced.instance);
  EXPECT_TRUE(is_valid_order(result.solution.order, 11));
  EXPECT_EQ(path_length(reduced.instance, result.solution.order), result.solution.cost);
  EXPECT_TRUE(result.matching_certified);  // two-valued weights

  const Weight optimal = brute_force_path(reduced.instance).cost;
  EXPECT_GE(result.solution.cost, optimal);
  // Hoogeveen analysis bound for bounded metrics (n = 11):
  // ratio <= 1.5 * (1 + 2/(n-1)) = 1.8.
  EXPECT_LE(static_cast<double>(result.solution.cost), 1.8 * static_cast<double>(optimal));
}

TEST_P(ApproxProperty, ChristofidesOnDiameter3Instances) {
  const Graph graph = random_with_diameter_at_most(10, 3, 0.2, rng_);
  const auto reduced = reduce_to_path_tsp(graph, PVec({2, 2, 1}));
  const ChristofidesResult result = christofides_path(reduced.instance);
  const Weight optimal = held_karp_path(reduced.instance).cost;
  EXPECT_GE(result.solution.cost, optimal);
  EXPECT_LE(static_cast<double>(result.solution.cost),
            1.5 * (1.0 + 2.0 / 9.0) * static_cast<double>(optimal) + 1e-9);
}

TEST_P(ApproxProperty, DoubleMstWithinTwoTimesMst) {
  const Graph graph = random_with_diameter_at_most(12, 2, 0.25, rng_);
  const auto reduced = reduce_to_path_tsp(graph, PVec::Lpq(3, 2));
  const PathSolution walk = double_mst_path(reduced.instance);
  EXPECT_TRUE(is_valid_order(walk.order, 12));
  const Weight mst = mst_lower_bound(reduced.instance);
  EXPECT_LE(walk.cost, 2 * mst);
  EXPECT_GE(walk.cost, mst);
}

TEST_P(ApproxProperty, ChristofidesNeverWorseThanDoubleMstByMuch) {
  // Not a theorem, but a sanity check on typical instances: Christofides
  // must at least stay within the double-MST guarantee.
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng_);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  const Weight christofides = christofides_path(reduced.instance).solution.cost;
  EXPECT_LE(christofides, 2 * mst_lower_bound(reduced.instance));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace lptsp
