#include <gtest/gtest.h>

#include <chrono>

#include "core/reduction.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "service/portfolio.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance reduced_instance(const Graph& graph, const PVec& p) {
  return reduce_to_path_tsp(graph, p, 1).instance;
}

TEST(Portfolio, ReturnsOptimalOnSmallInstancesWithoutDeadline) {
  TaskPool pool(4);
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{0};  // run everything out
  EnginePortfolio portfolio(pool, options);
  Rng rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
    const MetricInstance instance = reduced_instance(graph, PVec::L21());

    SolveOptions exact;
    exact.engine = Engine::HeldKarp;
    const Weight optimal_span = solve_labeling(graph, PVec::L21(), exact).span;

    const PortfolioOutcome outcome = portfolio.race(instance);
    EXPECT_TRUE(outcome.optimal);
    EXPECT_EQ(outcome.solution.cost, optimal_span);
    EXPECT_TRUE(is_valid_order(outcome.solution.order, graph.n()));
    EXPECT_EQ(path_length(instance, outcome.solution.order), outcome.solution.cost);
    EXPECT_GE(outcome.attempts.size(), 2u);
    for (const EngineAttempt& attempt : outcome.attempts) {
      if (attempt.finished) {
        EXPECT_TRUE(attempt.verified);
      }
    }
  }
}

TEST(Portfolio, NeverWorseThanSingleHeuristicEngine) {
  TaskPool pool(4);
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{0};
  EnginePortfolio portfolio(pool, options);
  Rng rng(17);
  // n = 16 keeps Held-Karp in the race (and fast), so the portfolio's
  // answer is provably <= the standalone heuristic's.
  const Graph graph = random_with_diameter_at_most(16, 2, 0.25, rng);
  const MetricInstance instance = reduced_instance(graph, PVec::L21());

  ChainedLkOptions lk;
  lk.seed = options.seed;
  const Weight heuristic_cost = chained_lk_path(instance, lk).cost;

  const PortfolioOutcome outcome = portfolio.race(instance);
  EXPECT_LE(outcome.solution.cost, heuristic_cost);
}

TEST(Portfolio, TightDeadlineStillYieldsVerifiedResult) {
  TaskPool pool(4);
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{5};
  EnginePortfolio portfolio(pool, options);
  Rng rng(29);
  const Graph graph = random_with_diameter_at_most(80, 2, 0.15, rng);
  const MetricInstance instance = reduced_instance(graph, PVec::L21());
  const PortfolioOutcome outcome = portfolio.race(instance);
  ASSERT_GE(outcome.solution.cost, 0);
  EXPECT_TRUE(is_valid_order(outcome.solution.order, graph.n()));
  EXPECT_EQ(path_length(instance, outcome.solution.order), outcome.solution.cost);
  bool winner_verified = false;
  for (const EngineAttempt& attempt : outcome.attempts) {
    if (attempt.engine == outcome.winner && attempt.verified) winner_verified = true;
  }
  EXPECT_TRUE(winner_verified);
}

TEST(Portfolio, RecordsWinnersPerSizeBucket) {
  TaskPool pool(4);
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{0};
  EnginePortfolio portfolio(pool, options);
  Rng rng(31);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  const MetricInstance instance = reduced_instance(graph, PVec::L21());
  const PortfolioOutcome outcome = portfolio.race(instance);
  EXPECT_GE(portfolio.wins(instance.n(), outcome.winner), 1u);
}

TEST(Portfolio, PreferredEngineFallsBackToSizeHeuristic) {
  TaskPool pool(2);
  EnginePortfolio portfolio(pool);
  EXPECT_EQ(portfolio.preferred_engine(10), Engine::HeldKarp);
  EXPECT_EQ(portfolio.preferred_engine(200), Engine::ChainedLK);
}

TEST(Portfolio, TrivialInstancesAreExactInline) {
  TaskPool pool(2);
  EnginePortfolio portfolio(pool);
  const MetricInstance instance = reduced_instance(path_graph(2), PVec({2}));
  const PortfolioOutcome outcome = portfolio.race(instance);
  EXPECT_TRUE(outcome.optimal);
  EXPECT_EQ(outcome.solution.cost, 2);
}

}  // namespace
}  // namespace lptsp
