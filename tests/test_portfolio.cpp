#include <gtest/gtest.h>

#include <bit>
#include <chrono>

#include "core/reduction.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "service/portfolio.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance reduced_instance(const Graph& graph, const PVec& p) {
  return reduce_to_path_tsp(graph, p, 1).instance;
}

TEST(Portfolio, ReturnsOptimalOnSmallInstancesWithoutDeadline) {
  TaskPool pool(4);
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{0};  // run everything out
  EnginePortfolio portfolio(pool, options);
  Rng rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
    const MetricInstance instance = reduced_instance(graph, PVec::L21());

    SolveOptions exact;
    exact.engine = Engine::HeldKarp;
    const Weight optimal_span = solve_labeling(graph, PVec::L21(), exact).span;

    const PortfolioOutcome outcome = portfolio.race(instance);
    EXPECT_TRUE(outcome.optimal);
    EXPECT_EQ(outcome.solution.cost, optimal_span);
    EXPECT_TRUE(is_valid_order(outcome.solution.order, graph.n()));
    EXPECT_EQ(path_length(instance, outcome.solution.order), outcome.solution.cost);
    EXPECT_GE(outcome.attempts.size(), 2u);
    for (const EngineAttempt& attempt : outcome.attempts) {
      if (attempt.finished) {
        EXPECT_TRUE(attempt.verified);
      }
    }
  }
}

TEST(Portfolio, NeverWorseThanSingleHeuristicEngine) {
  TaskPool pool(4);
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{0};
  EnginePortfolio portfolio(pool, options);
  Rng rng(17);
  // n = 16 keeps Held-Karp in the race (and fast), so the portfolio's
  // answer is provably <= the standalone heuristic's.
  const Graph graph = random_with_diameter_at_most(16, 2, 0.25, rng);
  const MetricInstance instance = reduced_instance(graph, PVec::L21());

  ChainedLkOptions lk;
  lk.seed = options.seed;
  const Weight heuristic_cost = chained_lk_path(instance, lk).cost;

  const PortfolioOutcome outcome = portfolio.race(instance);
  EXPECT_LE(outcome.solution.cost, heuristic_cost);
}

TEST(Portfolio, TightDeadlineStillYieldsVerifiedResult) {
  TaskPool pool(4);
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{5};
  EnginePortfolio portfolio(pool, options);
  Rng rng(29);
  const Graph graph = random_with_diameter_at_most(80, 2, 0.15, rng);
  const MetricInstance instance = reduced_instance(graph, PVec::L21());
  const PortfolioOutcome outcome = portfolio.race(instance);
  ASSERT_GE(outcome.solution.cost, 0);
  EXPECT_TRUE(is_valid_order(outcome.solution.order, graph.n()));
  EXPECT_EQ(path_length(instance, outcome.solution.order), outcome.solution.cost);
  bool winner_verified = false;
  for (const EngineAttempt& attempt : outcome.attempts) {
    if (attempt.engine == outcome.winner && attempt.verified) winner_verified = true;
  }
  EXPECT_TRUE(winner_verified);
}

TEST(Portfolio, RecordsWinnersPerSizeBucket) {
  TaskPool pool(4);
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{0};
  EnginePortfolio portfolio(pool, options);
  Rng rng(31);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  const MetricInstance instance = reduced_instance(graph, PVec::L21());
  const PortfolioOutcome outcome = portfolio.race(instance);
  EXPECT_GE(portfolio.wins(instance.n(), outcome.winner), 1u);
}

TEST(Portfolio, PreferredEngineFallsBackToSizeHeuristic) {
  TaskPool pool(2);
  EnginePortfolio portfolio(pool);
  EXPECT_EQ(portfolio.preferred_engine(10), Engine::HeldKarp);
  EXPECT_EQ(portfolio.preferred_engine(200), Engine::ChainedLK);
}

/// merge_win_table was only exercised indirectly (through the durable
/// service restart test); these pin its contract directly. Counter layout:
/// bucket-major flat vector of kBuckets * kSlots, bucket = bit_width(n),
/// slots ordered HeldKarp / BranchBound / ChainedLK.
class WinTableMerge : public ::testing::Test {
 protected:
  static std::size_t index_of(int n, int slot) {
    return static_cast<std::size_t>(std::bit_width(static_cast<unsigned>(n))) *
               EnginePortfolio::kSlots +
           static_cast<std::size_t>(slot);
  }

  static std::vector<std::uint64_t> empty_table() {
    return std::vector<std::uint64_t>(
        static_cast<std::size_t>(EnginePortfolio::kBuckets) * EnginePortfolio::kSlots, 0);
  }

  TaskPool pool_{2};
  EnginePortfolio portfolio_{pool_};
};

TEST_F(WinTableMerge, DisjointTablesPreserveEveryCount) {
  auto first = empty_table();
  first[index_of(10, 0)] = 7;  // HeldKarp wins at n~10
  auto second = empty_table();
  second[index_of(200, 2)] = 3;  // ChainedLK wins at n~200
  portfolio_.merge_win_table(first);
  portfolio_.merge_win_table(second);
  EXPECT_EQ(portfolio_.wins(10, Engine::HeldKarp), 7u);
  EXPECT_EQ(portfolio_.wins(200, Engine::ChainedLK), 3u);
  EXPECT_EQ(portfolio_.wins(10, Engine::ChainedLK), 0u);
  EXPECT_EQ(portfolio_.wins(200, Engine::HeldKarp), 0u);
  // The merged table reads back exactly the element-wise sum.
  auto want = empty_table();
  want[index_of(10, 0)] = 7;
  want[index_of(200, 2)] = 3;
  EXPECT_EQ(portfolio_.win_table(), want);
}

TEST_F(WinTableMerge, OverlappingTablesAddCounts) {
  auto counts = empty_table();
  counts[index_of(16, 1)] = 5;  // BranchBound at n~16
  portfolio_.merge_win_table(counts);
  counts[index_of(16, 1)] = 11;
  portfolio_.merge_win_table(counts);
  EXPECT_EQ(portfolio_.wins(16, Engine::BranchBound), 16u);
  // Same bucket, different slot stays independent.
  EXPECT_EQ(portfolio_.wins(16, Engine::HeldKarp), 0u);
}

TEST_F(WinTableMerge, EmptyTableIsIdentityAndWrongLengthIsIgnored) {
  auto counts = empty_table();
  counts[index_of(12, 0)] = 4;
  portfolio_.merge_win_table(counts);
  const auto before = portfolio_.win_table();

  portfolio_.merge_win_table(empty_table());  // all-zero: identity
  EXPECT_EQ(portfolio_.win_table(), before);

  portfolio_.merge_win_table({});  // zero-length: ignored
  portfolio_.merge_win_table(std::vector<std::uint64_t>(5, 99));        // too short
  portfolio_.merge_win_table(std::vector<std::uint64_t>(
      static_cast<std::size_t>(EnginePortfolio::kBuckets) * EnginePortfolio::kSlots + 1,
      99));  // too long
  EXPECT_EQ(portfolio_.win_table(), before);
}

TEST_F(WinTableMerge, MergePreservesLiveRaceCounts) {
  // Counts recorded by actual races and merged-in persisted counts add up.
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{0};
  EnginePortfolio racing(pool_, options);
  Rng rng(77);
  const Graph graph = random_with_diameter_at_most(10, 2, 0.3, rng);
  const MetricInstance instance = reduced_instance(graph, PVec::L21());
  const PortfolioOutcome outcome = racing.race(instance);
  const std::uint64_t live = racing.wins(instance.n(), outcome.winner);
  ASSERT_GE(live, 1u);

  auto persisted = empty_table();
  persisted[index_of(instance.n(),
                     outcome.winner == Engine::HeldKarp ? 0
                     : outcome.winner == Engine::BranchBound ? 1 : 2)] = 9;
  racing.merge_win_table(persisted);
  EXPECT_EQ(racing.wins(instance.n(), outcome.winner), live + 9);
}

TEST_F(WinTableMerge, PoisonedHeuristicTableStillReprobesExactEngine) {
  // Regression: a restart that merges a heuristic-heavy persisted win
  // table used to disable the exact engine permanently — with zero exact
  // wins on record the skip rule never launched it again, so exact wins
  // stayed zero forever. The re-probe policy must launch the exact engine
  // every Nth otherwise-skipped race and let it recover the bucket.
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{0};  // exact always finishes
  EnginePortfolio portfolio(pool_, options);
  auto poisoned = empty_table();
  poisoned[index_of(12, 2)] = 1000;  // ChainedLK owns the bucket, exact never won
  portfolio.merge_win_table(poisoned);

  Rng rng(11);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  const MetricInstance instance = reduced_instance(graph, PVec::L21());
  bool exact_attempted = false;
  // Unbounded races at n = 12: whenever the exact engine is launched it
  // finishes, certifies the optimum, and wins the tie-break against the
  // heuristic — so "exact recovers wins" reduces to "exact is re-probed".
  for (int race = 0; race < 64 && portfolio.wins(12, Engine::HeldKarp) == 0; ++race) {
    const PortfolioOutcome outcome = portfolio.race(instance);
    ASSERT_GE(outcome.solution.cost, 0);
    for (const EngineAttempt& attempt : outcome.attempts) {
      if (attempt.engine == Engine::HeldKarp || attempt.engine == Engine::BranchBound) {
        exact_attempted = true;
      }
    }
  }
  EXPECT_TRUE(exact_attempted) << "exact engine was never re-probed from a poisoned table";
  EXPECT_GE(portfolio.wins(12, Engine::HeldKarp), 1u)
      << "re-probed exact engine failed to recover wins";
}

TEST(Portfolio, TrivialInstancesAreExactInline) {
  TaskPool pool(2);
  EnginePortfolio portfolio(pool);
  const MetricInstance instance = reduced_instance(path_graph(2), PVec({2}));
  const PortfolioOutcome outcome = portfolio.race(instance);
  EXPECT_TRUE(outcome.optimal);
  EXPECT_EQ(outcome.solution.cost, 2);
}

}  // namespace
}  // namespace lptsp
