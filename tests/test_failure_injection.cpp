#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "core/greedy_labeling.hpp"
#include "core/l1_labeling.hpp"
#include "core/order_labeling.hpp"
#include "core/partition_paths.hpp"
#include "core/reduction.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "ham/gadgets.hpp"
#include "ham/hamiltonian.hpp"
#include "params/modular_decomposition.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/construct.hpp"
#include "tsp/held_karp.hpp"
#include "tsp/matching.hpp"
#include "util/check.hpp"

namespace lptsp {
namespace {

/// Systematic rejection tests: every documented precondition across the
/// public API must throw precondition_error, never silently mislabel.

TEST(FailureInjection, PVecInputs) {
  EXPECT_THROW(PVec({}), precondition_error);
  EXPECT_THROW(PVec({2, -1}), precondition_error);
  EXPECT_THROW(PVec({2, 1}).scaled(-1), precondition_error);
  EXPECT_THROW(PVec::ones(0), precondition_error);
}

TEST(FailureInjection, ReductionScope) {
  // Disconnected.
  EXPECT_THROW(reduce_to_path_tsp(Graph(3), PVec::L21()), precondition_error);
  // Diameter exceeds k.
  EXPECT_THROW(reduce_to_path_tsp(cycle_graph(7), PVec::L21()), precondition_error);
  // Metric condition.
  EXPECT_THROW(reduce_to_path_tsp(complete_graph(4), PVec({5, 2})), precondition_error);
  // Empty graph.
  EXPECT_THROW(reduce_to_path_tsp(Graph(0), PVec::L21()), precondition_error);
}

TEST(FailureInjection, SolverCaps) {
  EXPECT_THROW(brute_force_path(MetricInstance(0)), precondition_error);
  EXPECT_THROW(brute_force_path(MetricInstance(20)), precondition_error);
  HeldKarpOptions tight;
  tight.max_n = 25;  // above the absolute ceiling
  EXPECT_THROW(held_karp_path(MetricInstance(5), tight), precondition_error);
  EXPECT_THROW(exact_labeling_branch_and_bound(complete_graph(11), PVec::L21()),
               precondition_error);
  EXPECT_THROW(min_span_over_all_orders(complete_graph(10), PVec::L21()), precondition_error);
}

TEST(FailureInjection, OrderValidation) {
  const MetricInstance instance(4);
  EXPECT_THROW(path_length(instance, {0, 1, 2}), precondition_error);
  EXPECT_THROW(path_length(instance, {0, 1, 2, 2}), precondition_error);
  EXPECT_THROW(labeling_from_order(instance, {3, 2, 1}), precondition_error);
}

TEST(FailureInjection, ConstructionInputs) {
  EXPECT_THROW(nearest_neighbor_path(MetricInstance(3), 5), precondition_error);
  EXPECT_THROW(nearest_neighbor_path(MetricInstance(0), 0), precondition_error);
  Rng rng(1);
  EXPECT_THROW(best_nearest_neighbor_path(MetricInstance(3), 0, rng), precondition_error);
}

TEST(FailureInjection, MatchingInputs) {
  EXPECT_THROW(min_weight_perfect_matching(MetricInstance(3), {0, 1, 2}), precondition_error);
  EXPECT_THROW(min_weight_perfect_matching_dp(MetricInstance(30), std::vector<int>(24, 0)),
               precondition_error);
  MetricInstance three_valued(4);
  three_valued.set_weight(0, 1, 1);
  three_valued.set_weight(0, 2, 2);
  three_valued.set_weight(0, 3, 3);
  three_valued.set_weight(1, 2, 1);
  three_valued.set_weight(1, 3, 1);
  three_valued.set_weight(2, 3, 1);
  EXPECT_THROW(min_weight_perfect_matching_two_valued(three_valued, {0, 1, 2, 3}),
               precondition_error);
}

TEST(FailureInjection, HamiltonianCaps) {
  EXPECT_THROW(has_hamiltonian_path(complete_graph(30)), precondition_error);
  EXPECT_THROW(min_path_partition_exact(Graph(0)), precondition_error);
}

TEST(FailureInjection, GadgetInputs) {
  EXPECT_THROW(hc_to_hp_gadget(Graph(0)), precondition_error);
  EXPECT_THROW(hc_to_hp_gadget(cycle_graph(4), 9), precondition_error);
  EXPECT_THROW(griggs_yeh_gadget(Graph(0)), precondition_error);
}

TEST(FailureInjection, PartitionScope) {
  EXPECT_THROW(lpq_span_diameter2(cycle_graph(7), 2, 1), precondition_error);
  EXPECT_THROW(lpq_span_diameter2(complete_graph(3), -1, 1), precondition_error);
  EXPECT_THROW(lpq_span_diameter2(complete_graph(3), 7, 3), precondition_error);
}

TEST(FailureInjection, GreedyLabelingInputs) {
  EXPECT_THROW(greedy_first_fit(Graph(0), PVec::L21()), precondition_error);
  EXPECT_THROW(greedy_first_fit(path_graph(3), PVec::L21(), GreedyOrder::Random, nullptr),
               precondition_error);
}

TEST(FailureInjection, L1Inputs) {
  EXPECT_THROW(l1_labeling_exact(path_graph(3), 0), precondition_error);
  EXPECT_THROW(l1_labeling_nd_kernel(path_graph(3), -1), precondition_error);
}

TEST(FailureInjection, ModularDecompositionInputs) {
  EXPECT_THROW(modular_decomposition(Graph(0)), precondition_error);
  EXPECT_THROW(module_closure(path_graph(3), {}), precondition_error);
}

TEST(FailureInjection, ErrorsCarryContext) {
  // Error messages should name the violated requirement.
  try {
    reduce_to_path_tsp(path_graph(6), PVec::L21());
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& error) {
    EXPECT_NE(std::string(error.what()).find("diam"), std::string::npos);
  }
  try {
    reduce_to_path_tsp(complete_graph(3), PVec({5, 1}));
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& error) {
    EXPECT_NE(std::string(error.what()).find("pmax"), std::string::npos);
  }
}

}  // namespace
}  // namespace lptsp
