#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/reduction.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(SolveStatus, NamesAreDistinct) {
  const std::set<std::string> names{
      status_name(SolveStatus::Ok),
      status_name(SolveStatus::EmptyGraph),
      status_name(SolveStatus::Disconnected),
      status_name(SolveStatus::DiameterExceedsK),
      status_name(SolveStatus::MetricConditionViolated),
      status_name(SolveStatus::EngineFailure),
      status_name(SolveStatus::RejectedOverload),
  };
  EXPECT_EQ(names.size(), 7u);
}

TEST(SolveStatus, EveryStatusHasANameAndEveryFailureAMessage) {
  // The name helpers are constexpr switches with no default compiled under
  // -Werror=switch, so an unnamed enumerator cannot build; this guards the
  // runtime side (nothing maps to the out-of-range fallback).
  for (int raw = 0; raw <= static_cast<int>(SolveStatus::RejectedOverload); ++raw) {
    const auto status = static_cast<SolveStatus>(raw);
    EXPECT_NE(status_name(status), "unknown");
    if (status != SolveStatus::Ok) {
      EXPECT_FALSE(status_message(status, 3, PVec::L21()).empty()) << status_name(status);
    }
  }
}

TEST(SolveStatus, RejectedOverloadIsAFailure) {
  SolveOutcome outcome;
  outcome.status = SolveStatus::RejectedOverload;
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(status_name(SolveStatus::RejectedOverload), "rejected-overload");
}

TEST(TrySolveLabeling, OkMatchesThrowingFrontEnd) {
  Rng rng(3);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  const SolveOutcome outcome = try_solve_labeling(graph, PVec::L21(), options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.message.empty());
  EXPECT_EQ(outcome.result.span, solve_labeling(graph, PVec::L21(), options).span);
  EXPECT_TRUE(outcome.result.optimal);
}

TEST(TrySolveLabeling, TypedStatusesInsteadOfExceptions) {
  EXPECT_EQ(try_solve_labeling(Graph(0), PVec::L21()).status, SolveStatus::EmptyGraph);

  Graph disconnected(4);
  disconnected.add_edge(0, 1);
  disconnected.add_edge(2, 3);
  EXPECT_EQ(try_solve_labeling(disconnected, PVec::L21()).status, SolveStatus::Disconnected);

  EXPECT_EQ(try_solve_labeling(path_graph(6), PVec::L21()).status,
            SolveStatus::DiameterExceedsK);

  EXPECT_EQ(try_solve_labeling(star_graph(5), PVec({3, 1})).status,
            SolveStatus::MetricConditionViolated);

  // Every failure carries a human-readable message.
  EXPECT_FALSE(try_solve_labeling(path_graph(6), PVec::L21()).message.empty());
}

TEST(TrySolveLabeling, EngineResourceCapsSurfaceAsEngineFailure) {
  Rng rng(9);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  options.held_karp.max_n = 4;  // deterministic size cap trip on n = 12
  const SolveOutcome outcome = try_solve_labeling(graph, PVec::L21(), options);
  EXPECT_EQ(outcome.status, SolveStatus::EngineFailure);
  EXPECT_FALSE(outcome.message.empty());
}

TEST(ClassifyLabelingRequest, AgreesWithDistanceMatrix) {
  Rng rng(13);
  const Graph graph = random_with_diameter_at_most(10, 2, 0.3, rng);
  const DistanceMatrix dist = all_pairs_distances(graph, 1);
  EXPECT_EQ(classify_labeling_request(graph, PVec::L21(), dist), SolveStatus::Ok);
  EXPECT_EQ(classify_labeling_request(graph, PVec({3, 1}), dist),
            SolveStatus::MetricConditionViolated);
  EXPECT_EQ(classify_labeling_request(graph, PVec({2}), dist),
            graph.n() > 1 && dist.max_finite() > 1 ? SolveStatus::DiameterExceedsK
                                                   : SolveStatus::Ok);
}

TEST(SolveLabelingReduced, InjectedReductionMatchesFullPipeline) {
  Rng rng(21);
  const Graph graph = random_with_diameter_at_most(11, 2, 0.35, rng);
  const PVec p = PVec::L21();
  const ReducedInstance reduced = reduce_to_path_tsp(graph, p, 1);

  SolveOptions options;
  options.engine = Engine::HeldKarp;
  const SolveResult full = solve_labeling(graph, p, options);
  const SolveResult injected = solve_labeling_reduced(graph, p, reduced, options);
  EXPECT_EQ(injected.span, full.span);
  EXPECT_TRUE(injected.optimal);
  EXPECT_TRUE(is_valid_labeling(graph, p, injected.labeling));

  // instance_from_distances must agree with the full reduction's instance.
  const MetricInstance rebuilt = instance_from_distances(reduced.dist, p);
  for (int u = 0; u < graph.n(); ++u) {
    for (int v = u + 1; v < graph.n(); ++v) {
      EXPECT_EQ(rebuilt.weight(u, v), reduced.instance.weight(u, v));
    }
  }
}

}  // namespace
}  // namespace lptsp
