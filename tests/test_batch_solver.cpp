#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "core/labeling.hpp"
#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "service/batch_solver.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

BatchSolver::Options fast_options() {
  BatchSolver::Options options;
  options.request_workers = 4;
  options.engine_workers = 4;
  options.portfolio.deadline = std::chrono::milliseconds{0};
  return options;
}

TEST(BatchSolver, BatchOfIsomorphicRequestsSolvesOnce) {
  BatchSolver solver(fast_options());
  Rng rng(41);
  const Graph base = random_with_diameter_at_most(18, 2, 0.3, rng);
  constexpr int kRequests = 12;
  std::vector<SolveRequest> requests;
  for (int i = 0; i < kRequests; ++i) {
    SolveRequest request;
    request.graph = relabel(base, rng.permutation(base.n()));
    request.p = PVec::L21();
    request.id = static_cast<std::uint64_t>(i);
    requests.push_back(std::move(request));
  }

  const std::vector<SolveResponse> responses = solver.solve_batch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  EXPECT_EQ(solver.engine_solves(), 1u);  // N isomorphic requests -> 1 solve

  int solved = 0;
  for (int i = 0; i < kRequests; ++i) {
    const SolveResponse& response = responses[static_cast<std::size_t>(i)];
    ASSERT_TRUE(response.ok()) << response.message;
    EXPECT_EQ(response.id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(response.span, responses[0].span);
    // Each response must be valid on ITS OWN graph (vertex numbering
    // differs per request even though the instances are isomorphic).
    EXPECT_TRUE(is_valid_labeling(requests[static_cast<std::size_t>(i)].graph, PVec::L21(),
                                  response.labeling));
    if (response.source == ResponseSource::Solved) ++solved;
  }
  EXPECT_EQ(solved, 1);
}

TEST(BatchSolver, SecondBatchIsServedFromCache) {
  BatchSolver solver(fast_options());
  Rng rng(43);
  const Graph base = random_with_diameter_at_most(15, 2, 0.3, rng);
  std::vector<SolveRequest> requests;
  for (int i = 0; i < 4; ++i) {
    SolveRequest request;
    request.graph = relabel(base, rng.permutation(base.n()));
    requests.push_back(std::move(request));
  }
  (void)solver.solve_batch(requests);
  EXPECT_EQ(solver.engine_solves(), 1u);

  const std::vector<SolveResponse> again = solver.solve_batch(requests);
  EXPECT_EQ(solver.engine_solves(), 1u);  // nothing new to solve
  for (const SolveResponse& response : again) {
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.source, ResponseSource::ResultCache);
  }
}

TEST(BatchSolver, BadRequestsGetTypedStatusesNotExceptions) {
  BatchSolver solver(fast_options());
  Rng rng(47);

  Graph disconnected(6);
  disconnected.add_edge(0, 1);
  disconnected.add_edge(2, 3);
  disconnected.add_edge(4, 5);

  std::vector<SolveRequest> requests(4);
  requests[0].graph = disconnected;
  requests[1].graph = path_graph(6);  // diameter 5 > k = 2
  requests[2].graph = star_graph(5);
  requests[2].p = PVec({3, 1});  // pmax > 2*pmin
  requests[3].graph = random_with_diameter_at_most(10, 2, 0.3, rng);  // the good one

  const std::vector<SolveResponse> responses = solver.solve_batch(requests);
  EXPECT_EQ(responses[0].status, SolveStatus::Disconnected);
  EXPECT_EQ(responses[1].status, SolveStatus::DiameterExceedsK);
  EXPECT_EQ(responses[2].status, SolveStatus::MetricConditionViolated);
  EXPECT_TRUE(responses[3].ok()) << responses[3].message;
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(responses[static_cast<std::size_t>(i)].message.empty());
  }

  SolveRequest empty;
  EXPECT_EQ(solver.solve_one(empty).status, SolveStatus::EmptyGraph);
}

TEST(BatchSolver, PinnedEngineIsHonoredAndNotCoalescedAcrossEngines) {
  BatchSolver solver(fast_options());
  Rng rng(53);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);

  std::vector<SolveRequest> requests(2);
  requests[0].graph = graph;
  requests[0].engine = Engine::HeldKarp;
  requests[1].graph = graph;
  requests[1].engine = Engine::ChainedLK;

  const std::vector<SolveResponse> responses = solver.solve_batch(requests);
  ASSERT_TRUE(responses[0].ok());
  ASSERT_TRUE(responses[1].ok());
  EXPECT_EQ(responses[0].engine, Engine::HeldKarp);
  EXPECT_TRUE(responses[0].optimal);
  EXPECT_EQ(responses[1].engine, Engine::ChainedLK);
  EXPECT_EQ(solver.engine_solves(), 2u);  // different engines never share a solve
  EXPECT_GE(responses[1].span, responses[0].span);
}

TEST(BatchSolver, ReductionCacheServesNewPVectorsWithoutNewBfs) {
  BatchSolver solver(fast_options());
  Rng rng(59);
  const Graph graph = random_with_diameter_at_most(14, 2, 0.35, rng);

  SolveRequest first;
  first.graph = graph;
  first.p = PVec::L21();
  ASSERT_TRUE(solver.solve_one(first).ok());

  // Same interference graph, different constraint vector: frequency
  // assignment re-querying under many p — the reduction (distance matrix)
  // is reused, only the matrix fill and engine run.
  SolveRequest second;
  second.graph = graph;
  second.p = PVec({2, 2});
  const SolveResponse response = solver.solve_one(second);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.reduction_cached);
  EXPECT_EQ(response.source, ResponseSource::Solved);
  EXPECT_TRUE(is_valid_labeling(graph, PVec({2, 2}), response.labeling));
}

TEST(BatchSolver, AsyncSubmitCoalescesAndVerifies) {
  BatchSolver solver(fast_options());
  Rng rng(61);
  const Graph base = random_with_diameter_at_most(16, 2, 0.3, rng);
  constexpr int kRequests = 8;
  std::vector<SolveRequest> requests;
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    SolveRequest request;
    request.graph = relabel(base, rng.permutation(base.n()));
    request.id = static_cast<std::uint64_t>(i);
    requests.push_back(request);
    futures.push_back(solver.submit(std::move(request)));
  }
  Weight span = -1;
  for (int i = 0; i < kRequests; ++i) {
    const SolveResponse response = futures[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(response.ok()) << response.message;
    if (span < 0) span = response.span;
    EXPECT_EQ(response.span, span);
    EXPECT_TRUE(is_valid_labeling(requests[static_cast<std::size_t>(i)].graph, PVec::L21(),
                                  response.labeling));
  }
  // Exact solve counts depend on scheduling (a follower can slip between a
  // leader finishing and the cache publish), but coalescing + cache must
  // have removed work relative to the request count.
  EXPECT_LT(solver.engine_solves(), static_cast<std::uint64_t>(kRequests));
}

TEST(BatchSolver, TruncatedResultsAreUpgradedByLargerBudgets) {
  // fast_options has an unlimited service default, so the second request
  // brings strictly more budget than the first's 1ms race. The B&B node
  // cap is kept small so the unlimited race stays test-sized.
  BatchSolver::Options options = fast_options();
  options.portfolio.bb_node_limit = 200'000;
  BatchSolver solver(options);
  Rng rng(73);
  const Graph graph = random_with_diameter_at_most(60, 2, 0.15, rng);

  SolveRequest rushed;
  rushed.graph = graph;
  rushed.deadline = std::chrono::milliseconds{1};
  const SolveResponse first = solver.solve_one(rushed);
  ASSERT_TRUE(first.ok()) << first.message;

  SolveRequest patient;
  patient.graph = graph;  // deadline 0 -> unlimited service default
  const SolveResponse second = solver.solve_one(patient);
  ASSERT_TRUE(second.ok()) << second.message;
  if (!first.optimal) {
    // The cached truncated result must not be served to the bigger budget.
    EXPECT_EQ(second.source, ResponseSource::Solved);
    EXPECT_EQ(solver.engine_solves(), 2u);
  }
  EXPECT_LE(second.span, first.span);
  EXPECT_TRUE(is_valid_labeling(graph, patient.p, second.labeling));

  // A third rushed request is served the refreshed entry: produced under
  // an unlimited budget, it is never upgradeable again.
  const SolveResponse third = solver.solve_one(rushed);
  EXPECT_EQ(third.source, ResponseSource::ResultCache);
  EXPECT_EQ(third.span, second.span);
}

TEST(BatchSolver, CacheDisabledSolvesEveryRequest) {
  BatchSolver::Options options = fast_options();
  options.use_cache = false;
  BatchSolver solver(options);
  Rng rng(67);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  SolveRequest request;
  request.graph = graph;
  ASSERT_TRUE(solver.solve_one(request).ok());
  ASSERT_TRUE(solver.solve_one(request).ok());
  EXPECT_EQ(solver.engine_solves(), 2u);
}

TEST(BatchSolver, PriorityBatchesStillAnswerEveryone) {
  BatchSolver solver(fast_options());
  Rng rng(71);
  std::vector<SolveRequest> requests;
  for (int i = 0; i < 6; ++i) {
    SolveRequest request;
    request.graph = random_with_diameter_at_most(10 + i, 2, 0.3, rng);
    request.priority = i % 3;
    request.deadline = std::chrono::milliseconds{200};
    request.id = static_cast<std::uint64_t>(i);
    requests.push_back(std::move(request));
  }
  const std::vector<SolveResponse> responses = solver.solve_batch(requests);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].message;
    EXPECT_EQ(responses[i].id, requests[i].id);
    EXPECT_TRUE(is_valid_labeling(requests[i].graph, requests[i].p, responses[i].labeling));
  }
}

}  // namespace
}  // namespace lptsp
