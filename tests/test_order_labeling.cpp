#include <gtest/gtest.h>

#include "core/order_labeling.hpp"
#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "tsp/held_karp.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(Claim1, PrefixSumsOnKnownExample) {
  const Graph graph = path_graph(3);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  // Order (0, 2, 1): w(0,2) = 1 (distance 2), w(2,1) = 2 (adjacent).
  const Labeling labeling = labeling_from_order(reduced.instance, {0, 2, 1});
  EXPECT_EQ(labeling.labels[0], 0);
  EXPECT_EQ(labeling.labels[2], 1);
  EXPECT_EQ(labeling.labels[1], 3);
  EXPECT_EQ(labeling.span(), path_length(reduced.instance, {0, 2, 1}));
}

TEST(Claim1, RequiresPermutation) {
  const MetricInstance instance(3);
  EXPECT_THROW(labeling_from_order(instance, {0, 1}), precondition_error);
}

class Claim1Property : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 601 + 2)};
};

TEST_P(Claim1Property, PrefixLabelingIsValidAndSpanEqualsPathLength) {
  // Core of Claim 1: for ANY order, the prefix labeling is a valid
  // L(p)-labeling whose span is the Hamiltonian path length.
  const std::vector<PVec> ps{PVec::L21(), PVec({1, 1}), PVec({2, 2}), PVec::Lpq(3, 2),
                             PVec({4, 3})};
  const Graph graph = random_with_diameter_at_most(9, 2, 0.3, rng_);
  const auto dist = all_pairs_distances(graph);
  for (const PVec& p : ps) {
    const auto reduced = reduce_to_path_tsp(graph, p);
    for (int trial = 0; trial < 5; ++trial) {
      const Order order = rng_.permutation(graph.n());
      const Labeling labeling = labeling_from_order(reduced.instance, order);
      EXPECT_TRUE(is_valid_labeling(graph, dist, p, labeling)) << "p = " << p.to_string();
      EXPECT_EQ(labeling.span(), path_length(reduced.instance, order));
    }
  }
}

TEST_P(Claim1Property, PrefixMatchesGeneralDpUnderCondition) {
  // Under pmax <= 2*pmin the general per-order DP and the Claim-1 prefix
  // labeling agree exactly.
  const Graph graph = random_with_diameter_at_most(8, 3, 0.25, rng_);
  const PVec p({2, 2, 1});
  const auto reduced = reduce_to_path_tsp(graph, p);
  for (int trial = 0; trial < 5; ++trial) {
    const Order order = rng_.permutation(graph.n());
    const Labeling prefix = labeling_from_order(reduced.instance, order);
    const Labeling general = minimal_labeling_for_order(reduced.dist, p, order);
    EXPECT_EQ(prefix.labels, general.labels);
  }
}

TEST_P(Claim1Property, GeneralDpNeverBelowPathLengthAndCanExceedIt) {
  // Ablation seed: the per-order minimal span always dominates the path
  // length (l_i >= l_{i-1} + w_{i-1,i} by the DP recurrence). Without the
  // pmax <= 2*pmin condition the inequality can be strict — the precise
  // reason the naive reduction UNDER-reports lambda_p (measured in E10).
  const Graph graph = random_with_diameter_at_most(7, 2, 0.35, rng_);
  const PVec p({5, 1});
  const auto reduced = reduce_to_path_tsp_unchecked(graph, p);
  for (int trial = 0; trial < 10; ++trial) {
    const Order order = rng_.permutation(graph.n());
    const Labeling general = minimal_labeling_for_order(reduced.dist, p, order);
    EXPECT_GE(general.span(), path_length(reduced.instance, order));
    EXPECT_TRUE(is_valid_labeling(graph, reduced.dist, p, general));
  }
}

TEST_P(Claim1Property, MinOverOrdersEqualsHeldKarpUnderCondition) {
  // Independent oracle: exhaustive min over orders of the general DP must
  // equal the TSP optimum of the reduced instance (Theorem 2).
  const Graph graph = random_with_diameter_at_most(7, 2, 0.3, rng_);
  const PVec p = PVec::L21();
  const auto reduced = reduce_to_path_tsp(graph, p);
  EXPECT_EQ(min_span_over_all_orders(graph, p), held_karp_path(reduced.instance).cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Claim1Property, ::testing::Range(0, 8));

TEST(GeneralDp, UnconstrainedPairsShareLabels) {
  // Path 0-1-2-3 with k = 2: ends are unconstrained (distance 3).
  const Graph graph = path_graph(4);
  const auto dist = all_pairs_distances(graph);
  const Labeling labeling = minimal_labeling_for_order(dist, PVec::L21(), {0, 3, 1, 2});
  // 0 and 3 can share label 0.
  EXPECT_EQ(labeling.labels[0], 0);
  EXPECT_EQ(labeling.labels[3], 0);
}

TEST(OrderEnumeration, SizeCap) {
  EXPECT_THROW(min_span_over_all_orders(complete_graph(10), PVec::L21()), precondition_error);
}

}  // namespace
}  // namespace lptsp
