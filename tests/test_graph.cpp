#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph graph(0);
  EXPECT_EQ(graph.n(), 0);
  EXPECT_EQ(graph.m(), 0);
}

TEST(Graph, AddEdgeBasics) {
  Graph graph(3);
  graph.add_edge(0, 1);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 0));
  EXPECT_FALSE(graph.has_edge(0, 2));
  EXPECT_EQ(graph.m(), 1);
  EXPECT_EQ(graph.degree(0), 1);
  EXPECT_EQ(graph.degree(2), 0);
}

TEST(Graph, RejectsSelfLoop) {
  Graph graph(2);
  EXPECT_THROW(graph.add_edge(1, 1), precondition_error);
}

TEST(Graph, RejectsDuplicateEdge) {
  Graph graph(2);
  graph.add_edge(0, 1);
  EXPECT_THROW(graph.add_edge(1, 0), precondition_error);
}

TEST(Graph, RejectsOutOfRange) {
  Graph graph(2);
  EXPECT_THROW(graph.add_edge(0, 2), precondition_error);
  EXPECT_THROW(graph.add_edge(-1, 0), precondition_error);
  EXPECT_THROW(static_cast<void>(graph.neighbors(5)), precondition_error);
}

TEST(Graph, AddEdgeIfAbsent) {
  Graph graph(3);
  EXPECT_TRUE(graph.add_edge_if_absent(0, 1));
  EXPECT_FALSE(graph.add_edge_if_absent(0, 1));
  EXPECT_FALSE(graph.add_edge_if_absent(2, 2));
  EXPECT_EQ(graph.m(), 1);
}

TEST(Graph, EdgesSortedAndComplete) {
  const Graph graph = Graph::from_edges(4, {{2, 3}, {0, 1}, {1, 3}});
  const auto edges = graph.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(0, 1));
  EXPECT_EQ(edges[1], std::make_pair(1, 3));
  EXPECT_EQ(edges[2], std::make_pair(2, 3));
}

TEST(Graph, AdjacencyRowBitsMatchHasEdge) {
  Rng rng(1);
  const Graph graph = erdos_renyi(70, 0.3, rng);  // spans >1 word per row
  for (int u = 0; u < graph.n(); ++u) {
    const std::uint64_t* row = graph.adjacency_row(u);
    for (int v = 0; v < graph.n(); ++v) {
      const bool bit = (row[v / 64] >> (v % 64)) & 1;
      EXPECT_EQ(bit, graph.has_edge(u, v));
    }
  }
}

TEST(Graph, EqualityComparesEdgeSets) {
  const Graph a = Graph::from_edges(3, {{0, 1}});
  const Graph b = Graph::from_edges(3, {{0, 1}});
  const Graph c = Graph::from_edges(3, {{0, 2}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Bfs, PathGraphDistances) {
  const Graph graph = path_graph(5);
  const auto dist = bfs_distances(graph, 0);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
}

TEST(Bfs, DisconnectedUnreachable) {
  Graph graph(3);
  graph.add_edge(0, 1);
  const auto dist = bfs_distances(graph, 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(DistanceMatrix, DiagonalZeroAndSymmetricFill) {
  const Graph graph = cycle_graph(6);
  const auto dist = all_pairs_distances(graph);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(dist.at(v, v), 0);
  for (int u = 0; u < 6; ++u) {
    for (int v = 0; v < 6; ++v) EXPECT_EQ(dist.at(u, v), dist.at(v, u));
  }
  EXPECT_EQ(dist.at(0, 3), 3);
  EXPECT_TRUE(dist.all_finite());
  EXPECT_EQ(dist.max_finite(), 3);
}

/// Reference Floyd–Warshall for cross-checking BFS all-pairs distances.
DistanceMatrix floyd_warshall(const Graph& graph) {
  const int n = graph.n();
  DistanceMatrix dist(n);
  constexpr int kBig = 1 << 20;
  std::vector<std::vector<int>> d(static_cast<std::size_t>(n),
                                  std::vector<int>(static_cast<std::size_t>(n), kBig));
  for (int v = 0; v < n; ++v) d[static_cast<std::size_t>(v)][static_cast<std::size_t>(v)] = 0;
  for (const auto& [u, v] : graph.edges()) {
    d[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] = 1;
    d[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] = 1;
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            std::min(d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                     d[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] +
                         d[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      dist.set(i, j, d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] >= kBig
                         ? kUnreachable
                         : d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }
  return dist;
}

class ApspProperty : public ::testing::TestWithParam<int> {};

TEST_P(ApspProperty, BfsMatchesFloydWarshall) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph graph = erdos_renyi(24, 0.2, rng);
  const auto bfs = all_pairs_distances(graph, 1);
  const auto reference = floyd_warshall(graph);
  for (int u = 0; u < graph.n(); ++u) {
    for (int v = 0; v < graph.n(); ++v) EXPECT_EQ(bfs.at(u, v), reference.at(u, v));
  }
}

TEST_P(ApspProperty, ParallelMatchesSerial) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const Graph graph = random_connected(30, 0.15, rng);
  const auto serial = all_pairs_distances(graph, 1);
  const auto parallel = all_pairs_distances(graph, 0);
  for (int u = 0; u < graph.n(); ++u) {
    for (int v = 0; v < graph.n(); ++v) EXPECT_EQ(serial.at(u, v), parallel.at(u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApspProperty, ::testing::Range(0, 8));

TEST(Properties, Connectivity) {
  EXPECT_TRUE(is_connected(path_graph(4)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
  Graph disconnected(4);
  disconnected.add_edge(0, 1);
  EXPECT_FALSE(is_connected(disconnected));
}

TEST(Properties, ConnectedComponents) {
  Graph graph(5);
  graph.add_edge(0, 1);
  graph.add_edge(3, 4);
  const auto component = connected_components(graph);
  EXPECT_EQ(component[0], component[1]);
  EXPECT_EQ(component[3], component[4]);
  EXPECT_NE(component[0], component[2]);
  EXPECT_NE(component[0], component[3]);
}

TEST(Properties, DiameterKnownGraphs) {
  EXPECT_EQ(diameter(path_graph(6)), 5);
  EXPECT_EQ(diameter(cycle_graph(8)), 4);
  EXPECT_EQ(diameter(complete_graph(7)), 1);
  EXPECT_EQ(diameter(star_graph(9)), 2);
  EXPECT_EQ(diameter(petersen_graph()), 2);
}

TEST(Properties, DiameterRequiresConnected) {
  Graph graph(3);
  graph.add_edge(0, 1);
  EXPECT_THROW(diameter(graph), precondition_error);
}

TEST(Properties, MaxDegree) {
  EXPECT_EQ(max_degree(star_graph(6)), 5);
  EXPECT_EQ(max_degree(Graph(3)), 0);
}

TEST(Properties, CliqueAndIndependentChecks) {
  const Graph graph = complete_graph(4);
  EXPECT_TRUE(is_clique(graph, {0, 1, 2, 3}));
  EXPECT_FALSE(is_independent_set(graph, {0, 1}));
  const Graph empty(4);
  EXPECT_TRUE(is_independent_set(empty, {0, 1, 2}));
  EXPECT_FALSE(is_clique(empty, {0, 1}));
}

}  // namespace
}  // namespace lptsp
