#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <vector>

#include "graph/generators.hpp"
#include "service/batch_solver.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

// The BatchSolver admission gate (max_pending_requests): the backpressure
// hook the socket front-end plugs into. Over-limit submissions must be
// answered immediately with a typed RejectedOverload response — never
// queued without bound, never an exception.

SolveRequest slow_request(Rng& rng, std::uint64_t id) {
  // Unique diameter-2 graphs with a real race deadline: each occupies a
  // worker for ~deadline, so a rapid burst reliably exceeds the gate.
  SolveRequest request;
  request.graph = random_with_diameter_at_most(40, 2, 0.2, rng);
  request.p = PVec::L21();
  request.deadline = std::chrono::milliseconds{150};
  request.id = id;
  return request;
}

TEST(Backpressure, OverLimitSubmitsResolveImmediatelyWithTypedRejection) {
  BatchSolver::Options options;
  options.max_pending_requests = 1;
  options.request_workers = 1;
  BatchSolver solver(options);

  Rng rng(3);
  std::vector<std::future<SolveResponse>> futures;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    futures.push_back(solver.submit(slow_request(rng, id)));
  }
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const SolveResponse response = futures[i].get();
    EXPECT_EQ(response.id, static_cast<std::uint64_t>(i) + 1);
    if (response.status == SolveStatus::RejectedOverload) {
      ++rejected;
      EXPECT_FALSE(response.ok());
      EXPECT_FALSE(response.message.empty());
      EXPECT_TRUE(response.labeling.labels.empty());
    } else {
      EXPECT_TRUE(response.ok()) << response.message;
      ++ok;
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(solver.rejected_overload(), rejected);
}

TEST(Backpressure, SubmitAsyncRejectsInlineBeforeReturning) {
  BatchSolver::Options options;
  options.max_pending_requests = 1;
  options.request_workers = 1;
  BatchSolver solver(options);

  Rng rng(5);
  // Occupy the single admission slot.
  std::promise<SolveResponse> first_done;
  solver.submit_async(slow_request(rng, 1),
                      [&first_done](SolveResponse response) {
                        first_done.set_value(std::move(response));
                      });

  // The next submission must be refused synchronously: the callback runs
  // inline, before submit_async returns.
  std::atomic<bool> callback_ran{false};
  SolveResponse rejected;
  solver.submit_async(slow_request(rng, 2), [&](SolveResponse response) {
    rejected = std::move(response);
    callback_ran.store(true);
  });
  EXPECT_TRUE(callback_ran.load());
  EXPECT_EQ(rejected.status, SolveStatus::RejectedOverload);
  EXPECT_EQ(rejected.id, 2u);

  const SolveResponse first = first_done.get_future().get();
  EXPECT_TRUE(first.ok()) << first.message;
  EXPECT_EQ(first.id, 1u);
}

TEST(Backpressure, UnlimitedByDefault) {
  BatchSolver solver;  // max_pending_requests = 0
  Rng rng(7);
  std::vector<std::future<SolveResponse>> futures;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    SolveRequest request;
    request.graph = complete_graph(6);
    request.id = id;
    futures.push_back(solver.submit(request));
  }
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  EXPECT_EQ(solver.rejected_overload(), 0u);
  EXPECT_EQ(solver.pending_requests(), 0u);
}

}  // namespace
}  // namespace lptsp
