#include <gtest/gtest.h>

#include "core/labeling.hpp"
#include "core/pvec.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace lptsp {
namespace {

TEST(PVec, BasicAccessors) {
  const PVec p({2, 1});
  EXPECT_EQ(p.k(), 2);
  EXPECT_EQ(p.at(1), 2);
  EXPECT_EQ(p.at(2), 1);
  EXPECT_EQ(p.pmin(), 1);
  EXPECT_EQ(p.pmax(), 2);
}

TEST(PVec, FactoryHelpers) {
  EXPECT_EQ(PVec::L21(), PVec({2, 1}));
  EXPECT_EQ(PVec::Lpq(3, 2), PVec({3, 2}));
  EXPECT_EQ(PVec::ones(3), PVec({1, 1, 1}));
}

TEST(PVec, ReductionCondition) {
  EXPECT_TRUE(PVec({2, 1}).satisfies_reduction_condition());
  EXPECT_TRUE(PVec({2, 2, 1}).satisfies_reduction_condition());
  EXPECT_TRUE(PVec({1, 1}).satisfies_reduction_condition());
  EXPECT_FALSE(PVec({3, 1}).satisfies_reduction_condition());
  EXPECT_FALSE(PVec({5, 2, 2}).satisfies_reduction_condition());
}

TEST(PVec, Scaling) {
  const PVec scaled = PVec({2, 1}).scaled(3);
  EXPECT_EQ(scaled, PVec({6, 3}));
}

TEST(PVec, Validation) {
  EXPECT_THROW(PVec({}), precondition_error);
  EXPECT_THROW(PVec({1, -1}), precondition_error);
  EXPECT_THROW(static_cast<void>(PVec({1}).at(2)), precondition_error);
  EXPECT_THROW(static_cast<void>(PVec({1}).at(0)), precondition_error);
}

TEST(PVec, ToString) {
  EXPECT_EQ(PVec({2, 1}).to_string(), "(2,1)");
  EXPECT_EQ(PVec({7}).to_string(), "(7)");
}

TEST(Labeling, SpanIsMaxLabel) {
  const Labeling labeling{{0, 4, 2}};
  EXPECT_EQ(labeling.span(), 4);
  EXPECT_THROW(static_cast<void>(Labeling{}.span()), precondition_error);
}

TEST(Verifier, AcceptsValidL21OnPath) {
  // Path 0-1-2 with L(2,1): labels 0, 2, 4 work.
  const Graph graph = path_graph(3);
  EXPECT_TRUE(is_valid_labeling(graph, PVec::L21(), Labeling{{0, 2, 4}}));
}

TEST(Verifier, RejectsAdjacentGapViolation) {
  const Graph graph = path_graph(3);
  // Labels 0,1 on adjacent vertices violate p1 = 2.
  const Labeling bad{{0, 1, 3}};
  const auto violation = find_violation(graph, all_pairs_distances(graph), PVec::L21(), bad);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->distance, 1);
  EXPECT_EQ(violation->required, 2);
  EXPECT_EQ(violation->actual_gap, 1);
  EXPECT_FALSE(violation->to_string().empty());
}

TEST(Verifier, RejectsDistanceTwoViolation) {
  const Graph graph = path_graph(3);
  // Vertices 0 and 2 are at distance 2 and must differ (p2 = 1).
  EXPECT_FALSE(is_valid_labeling(graph, PVec::L21(), Labeling{{0, 2, 0}}));
}

TEST(Verifier, PairsBeyondKAreUnconstrained) {
  // Path 0-1-2-3: distance(0,3) = 3 > k = 2, equal labels allowed there.
  const Graph graph = path_graph(4);
  EXPECT_TRUE(is_valid_labeling(graph, PVec::L21(), Labeling{{0, 2, 4, 0}}));
}

TEST(Verifier, RejectsNegativeLabels) {
  const Graph graph = path_graph(2);
  EXPECT_THROW(
      is_valid_labeling(graph, PVec::L21(), Labeling{{0, -2}}),
      precondition_error);
}

TEST(Verifier, RejectsSizeMismatch) {
  const Graph graph = path_graph(3);
  EXPECT_THROW(is_valid_labeling(graph, PVec::L21(), Labeling{{0, 2}}), precondition_error);
}

TEST(Verifier, ZeroVectorAcceptsAnything) {
  const Graph graph = complete_graph(4);
  EXPECT_TRUE(is_valid_labeling(graph, PVec({0, 0}), Labeling{{0, 0, 0, 0}}));
}

TEST(Verifier, HandlesDisconnectedGraphs) {
  Graph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(2, 3);
  // Unreachable pairs are unconstrained.
  EXPECT_TRUE(is_valid_labeling(graph, PVec::L21(), Labeling{{0, 2, 0, 2}}));
}

TEST(Verifier, FigureOneOptimalLabeling) {
  // lambda_{2,1,1} of the Figure-1 graph equals the optimal Hamiltonian
  // path weight; a manual optimum is easy to verify: the triangle needs
  // pairwise gaps >= 2 (distance 1) and d,e cascade.
  const Graph graph = fig1_graph();
  const PVec p({2, 1, 1});
  // a=0,b=2,c=4 (triangle), d=1? d adj c (|1-4|=3 ok), d-b dist2 (|1-2|=1 ok),
  // d-a dist3 (|1-0|=1 ok), e adj d (|x-1|>=2), e-c dist2, e-a/b dist3.
  const Labeling manual{{0, 2, 4, 1, 3}};
  EXPECT_TRUE(is_valid_labeling(graph, p, manual));
  EXPECT_EQ(manual.span(), 4);
}

}  // namespace
}  // namespace lptsp
