#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/solve_cache.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

/// The namespace-isolation contract of the sharded LRU: results and
/// reductions have separate budgets, so arbitrarily heavy traffic in one
/// namespace can never evict the other past its own budget.

std::shared_ptr<const ResultEntry> result_entry(Weight span) {
  return std::make_shared<const ResultEntry>(ResultEntry{{}, span, false, Engine::ChainedLK});
}

std::shared_ptr<const ReductionEntry> reduction_entry() {
  DistanceMatrix dist(2);
  dist.set(0, 1, 1);
  dist.set(1, 0, 1);
  return std::make_shared<const ReductionEntry>(ReductionEntry{dist, 1, true});
}

TEST(SolveCacheNamespaces, ReductionFloodCannotEvictResults) {
  SolveCache::Config config;
  config.capacity = 8;
  config.shards = 1;  // single shard: budgets are exact, order observable
  SolveCache cache(config);
  for (int i = 0; i < 8; ++i) {
    cache.put_result("result-" + std::to_string(i), result_entry(i));
  }
  for (int i = 0; i < 500; ++i) {
    cache.put_reduction("reduction-" + std::to_string(i), reduction_entry());
  }
  EXPECT_EQ(cache.result_entries(), 8u);
  EXPECT_LE(cache.reduction_entries(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(cache.find_result("result-" + std::to_string(i)), nullptr) << i;
  }
}

TEST(SolveCacheNamespaces, ResultFloodCannotEvictReductions) {
  SolveCache::Config config;
  config.capacity = 8;
  config.shards = 1;
  SolveCache cache(config);
  for (int i = 0; i < 8; ++i) {
    cache.put_reduction("reduction-" + std::to_string(i), reduction_entry());
  }
  for (int i = 0; i < 500; ++i) {
    cache.put_result("result-" + std::to_string(i), result_entry(i));
  }
  EXPECT_EQ(cache.reduction_entries(), 8u);
  EXPECT_LE(cache.result_entries(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(cache.find_reduction("reduction-" + std::to_string(i)), nullptr) << i;
  }
}

TEST(SolveCacheNamespaces, AsymmetricBudgetsAreHonored) {
  SolveCache::Config config;
  config.capacity = 4;             // results
  config.reduction_capacity = 16;  // reductions get their own, larger budget
  config.shards = 1;
  SolveCache cache(config);
  for (int i = 0; i < 100; ++i) {
    cache.put_result("result-" + std::to_string(i), result_entry(i));
    cache.put_reduction("reduction-" + std::to_string(i), reduction_entry());
  }
  EXPECT_EQ(cache.result_entries(), 4u);
  EXPECT_EQ(cache.reduction_entries(), 16u);
}

TEST(SolveCacheNamespaces, ConcurrentCrossNamespaceStormKeepsBudgets) {
  SolveCache::Config config;
  config.capacity = 16;
  config.reduction_capacity = 8;
  config.shards = 4;
  SolveCache cache(config);
  // Pin one namespace's working set, then storm the OTHER namespace from
  // many threads: under any interleaving the pinned set must survive,
  // because eviction pressure is confined to the storming namespace. Four
  // pinned keys fit a single shard's result budget (ceil(16/4) = 4), so
  // they survive any hash placement.
  for (int i = 0; i < 4; ++i) {
    cache.put_result("pinned-" + std::to_string(i), result_entry(i));
  }
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 131 + 17);
      for (int op = 0; op < 2000; ++op) {
        cache.put_reduction("storm-" + std::to_string(rng.uniform_int(0, 5000)),
                            reduction_entry());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Per-shard budgets bound each namespace independently of the other.
  EXPECT_LE(cache.reduction_entries(), 8u);
  EXPECT_EQ(cache.result_entries(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(cache.find_result("pinned-" + std::to_string(i)), nullptr) << i;
  }
}

}  // namespace
}  // namespace lptsp
