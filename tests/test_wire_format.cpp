#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "net/wire.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

// Fuzz-style coverage for the lptspd wire format: random messages must
// round-trip bit-exactly, and no truncation or byte corruption may ever
// crash, hang, or throw — only produce typed WireFaults. The Debug CI leg
// runs this with asserts live, which is the cheap stand-in for a real
// fuzzer in this toolchain.

SolveRequest random_request(Rng& rng, std::uint64_t id) {
  SolveRequest request;
  const int n = rng.uniform_int(0, 24);
  request.graph = n >= 2 ? erdos_renyi(n, rng.uniform01(), rng) : Graph(n);
  std::vector<int> entries(static_cast<std::size_t>(rng.uniform_int(1, 5)));
  for (int& entry : entries) entry = rng.uniform_int(0, 9);
  request.p = PVec(std::move(entries));
  request.deadline = std::chrono::milliseconds{rng.uniform_int(0, 100000)};
  request.priority = rng.uniform_int(-1000, 1000);
  if (rng.bernoulli(0.5)) {
    request.engine =
        static_cast<Engine>(rng.uniform_int(0, static_cast<int>(Engine::BranchBound)));
  }
  // v4 fields: trace context on roughly half the requests (0 = absent on
  // the wire, so both encodings stay covered).
  if (rng.bernoulli(0.5)) {
    request.trace_id = rng.next() | 1;  // nonzero
    request.trace_sampled = rng.bernoulli(0.5);
  }
  request.id = id;
  return request;
}

SolveResponse random_response(Rng& rng, std::uint64_t id) {
  SolveResponse response;
  response.id = id;
  response.status = static_cast<SolveStatus>(
      rng.uniform_int(0, static_cast<int>(SolveStatus::TransportDisconnected)));
  response.source =
      static_cast<ResponseSource>(rng.uniform_int(0, static_cast<int>(ResponseSource::Coalesced)));
  response.engine =
      static_cast<Engine>(rng.uniform_int(0, static_cast<int>(Engine::BranchBound)));
  response.optimal = rng.bernoulli(0.5);
  response.reduction_cached = rng.bernoulli(0.5);
  response.span = rng.uniform_int(-5, 1000000);
  response.seconds = rng.uniform01() * 12.0;
  if (rng.bernoulli(0.5)) {
    response.message = std::string("detail with \0 byte and utf8 \xc3\xa9", 31);
    response.message.push_back(static_cast<char>(rng.uniform_int(0, 255)));
  }
  const int labels = rng.uniform_int(0, 40);
  for (int i = 0; i < labels; ++i) {
    response.labeling.labels.push_back(rng.uniform_int(0, 1000000));
  }
  // v3 field: present on roughly half the responses (0 = absent on the
  // wire, so both encodings stay covered).
  if (rng.bernoulli(0.5)) {
    response.retry_after_ms = static_cast<std::uint32_t>(rng.uniform_int(1, 60000));
  }
  // v4 fields: the server-timing echo, also ~50/50.
  if (rng.bernoulli(0.5)) {
    response.server_queue_ns = rng.next() >> 8;
    response.server_service_ns = (rng.next() >> 8) | 1;  // at least one nonzero
  }
  return response;
}

/// Decode exactly one frame from a byte buffer.
DecodeResult decode_one(const std::vector<std::uint8_t>& bytes, const WireLimits& limits = {}) {
  FrameReader reader(limits);
  reader.feed(bytes.data(), bytes.size());
  DecodeResult result;
  EXPECT_TRUE(reader.next(result));
  return result;
}

TEST(WireFormat, HandshakeAndShutdownRoundTrip) {
  for (const bool ack : {false, true}) {
    std::vector<std::uint8_t> bytes;
    if (ack) {
      encode_hello_ack(bytes);
    } else {
      encode_hello(bytes);
    }
    const DecodeResult result = decode_one(bytes);
    ASSERT_TRUE(result.ok()) << result.detail;
    EXPECT_EQ(result.message.type, ack ? MessageType::HelloAck : MessageType::Hello);
    EXPECT_EQ(result.message.version, kWireVersion);
  }
  std::vector<std::uint8_t> bytes;
  encode_shutdown(bytes);
  const DecodeResult result = decode_one(bytes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.message.type, MessageType::Shutdown);
}

TEST(WireFormat, RandomRequestsRoundTripExactly) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const SolveRequest request = random_request(rng, static_cast<std::uint64_t>(trial) << 32);
    std::vector<std::uint8_t> bytes;
    encode_request(bytes, request);
    const DecodeResult result = decode_one(bytes);
    ASSERT_TRUE(result.ok()) << result.detail;
    ASSERT_EQ(result.message.type, MessageType::Request);
    const SolveRequest& decoded = result.message.request;
    EXPECT_EQ(decoded.id, request.id);
    EXPECT_EQ(decoded.graph, request.graph);
    EXPECT_EQ(decoded.p, request.p);
    EXPECT_EQ(decoded.deadline, request.deadline);
    EXPECT_EQ(decoded.priority, request.priority);
    EXPECT_EQ(decoded.engine, request.engine);
    EXPECT_EQ(decoded.trace_id, request.trace_id);
    EXPECT_EQ(decoded.trace_sampled, request.trace_sampled);
  }
}

TEST(WireFormat, RandomResponsesRoundTripExactly) {
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const SolveResponse response = random_response(rng, static_cast<std::uint64_t>(trial));
    std::vector<std::uint8_t> bytes;
    encode_response(bytes, response);
    const DecodeResult result = decode_one(bytes);
    ASSERT_TRUE(result.ok()) << result.detail;
    ASSERT_EQ(result.message.type, MessageType::Response);
    const SolveResponse& decoded = result.message.response;
    EXPECT_EQ(decoded.id, response.id);
    EXPECT_EQ(decoded.status, response.status);
    EXPECT_EQ(decoded.source, response.source);
    EXPECT_EQ(decoded.engine, response.engine);
    EXPECT_EQ(decoded.optimal, response.optimal);
    EXPECT_EQ(decoded.reduction_cached, response.reduction_cached);
    EXPECT_EQ(decoded.span, response.span);
    EXPECT_EQ(decoded.seconds, response.seconds);  // bit-exact via bit_cast
    EXPECT_EQ(decoded.message, response.message);
    EXPECT_EQ(decoded.labeling.labels, response.labeling.labels);
    EXPECT_EQ(decoded.retry_after_ms, response.retry_after_ms);
    EXPECT_EQ(decoded.server_queue_ns, response.server_queue_ns);
    EXPECT_EQ(decoded.server_service_ns, response.server_service_ns);
  }
}

/// A v1/v2 connection must never see the v3 retry-after flag bit: encoding
/// for an older negotiated version drops the hint (and an old decoder
/// would have rejected the unknown bit as malformed).
TEST(WireFormat, RetryAfterHintSuppressedForOlderPeers) {
  SolveResponse response;
  response.id = 9;
  response.status = SolveStatus::RejectedOverload;
  response.retry_after_ms = 250;
  for (const std::uint16_t version : {std::uint16_t{1}, std::uint16_t{2}}) {
    std::vector<std::uint8_t> bytes;
    encode_response(bytes, response, version);
    const DecodeResult result = decode_one(bytes);
    ASSERT_TRUE(result.ok()) << result.detail;
    EXPECT_EQ(result.message.response.retry_after_ms, 0u);
  }
  std::vector<std::uint8_t> bytes;
  encode_response(bytes, response, kWireVersion);
  const DecodeResult result = decode_one(bytes);
  ASSERT_TRUE(result.ok()) << result.detail;
  EXPECT_EQ(result.message.response.retry_after_ms, 250u);
}

/// A v1-v3 connection must never see the v4 trace-context flag bits: a
/// pre-v4 decoder treated the flags byte as a strict 0/1 pin flag and
/// would reject the frame, so the encoder drops the context for them.
TEST(WireFormat, TraceContextSuppressedForOlderPeers) {
  SolveRequest request;
  request.graph = path_graph(4);
  request.p = PVec::L21();
  request.id = 12;
  request.trace_id = 0xfeedfacecafef00dULL;
  request.trace_sampled = true;
  for (const std::uint16_t version :
       {std::uint16_t{1}, std::uint16_t{2}, std::uint16_t{3}}) {
    std::vector<std::uint8_t> bytes;
    encode_request(bytes, request, version);
    const DecodeResult result = decode_one(bytes);
    ASSERT_TRUE(result.ok()) << result.detail << " (version " << version << ")";
    EXPECT_EQ(result.message.request.trace_id, 0u);
    EXPECT_FALSE(result.message.request.trace_sampled);
    EXPECT_EQ(result.message.request.graph, request.graph);  // payload intact
  }
  std::vector<std::uint8_t> bytes;
  encode_request(bytes, request, kWireVersion);
  const DecodeResult result = decode_one(bytes);
  ASSERT_TRUE(result.ok()) << result.detail;
  EXPECT_EQ(result.message.request.trace_id, request.trace_id);
  EXPECT_TRUE(result.message.request.trace_sampled);
}

/// Same rule for the v4 server-timing echo on Responses.
TEST(WireFormat, ServerTimingSuppressedForOlderPeers) {
  SolveResponse response;
  response.id = 21;
  response.status = SolveStatus::Ok;
  response.server_queue_ns = 1200;
  response.server_service_ns = 84000;
  for (const std::uint16_t version :
       {std::uint16_t{1}, std::uint16_t{2}, std::uint16_t{3}}) {
    std::vector<std::uint8_t> bytes;
    encode_response(bytes, response, version);
    const DecodeResult result = decode_one(bytes);
    ASSERT_TRUE(result.ok()) << result.detail << " (version " << version << ")";
    EXPECT_EQ(result.message.response.server_queue_ns, 0u);
    EXPECT_EQ(result.message.response.server_service_ns, 0u);
  }
  std::vector<std::uint8_t> bytes;
  encode_response(bytes, response, kWireVersion);
  const DecodeResult result = decode_one(bytes);
  ASSERT_TRUE(result.ok()) << result.detail;
  EXPECT_EQ(result.message.response.server_queue_ns, 1200u);
  EXPECT_EQ(result.message.response.server_service_ns, 84000u);
}

TEST(WireFormat, RequestFlagByteValidation) {
  SolveRequest request;
  request.graph = path_graph(3);
  request.p = PVec::L21();
  request.id = 5;
  std::vector<std::uint8_t> frame;
  encode_request(frame, request);
  // The flags byte sits right after: len(4) type(1) id(8) deadline(4)
  // priority(4).
  const std::size_t flags_at = 4 + 1 + 8 + 4 + 4;
  {
    std::vector<std::uint8_t> bad = frame;
    bad[flags_at] = 0x08;  // first undefined bit
    const DecodeResult result = decode_payload(bad.data() + 4, bad.size() - 4);
    EXPECT_EQ(result.fault, WireFault::Malformed);
    EXPECT_NE(result.detail.find("unknown flag bits"), std::string::npos) << result.detail;
  }
  {
    // Sampled without trace context is self-inconsistent: there is no id
    // for the sample bit to apply to.
    std::vector<std::uint8_t> bad = frame;
    bad[flags_at] = 0x04;
    const DecodeResult result = decode_payload(bad.data() + 4, bad.size() - 4);
    EXPECT_EQ(result.fault, WireFault::Malformed);
    EXPECT_NE(result.detail.find("sampled"), std::string::npos) << result.detail;
  }
  {
    // Trace-context bit without the trailing u64 is a truncation.
    std::vector<std::uint8_t> bad = frame;
    bad[flags_at] = 0x02;
    const DecodeResult result = decode_payload(bad.data() + 4, bad.size() - 4);
    EXPECT_EQ(result.fault, WireFault::Truncated);
  }
}

TEST(WireFormat, ErrorFramesRoundTrip) {
  std::vector<std::uint8_t> bytes;
  encode_error(bytes, 77, WireFault::Malformed, "bad p-vector");
  const DecodeResult result = decode_one(bytes);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.message.type, MessageType::Error);
  EXPECT_EQ(result.message.error_id, 77u);
  EXPECT_EQ(result.message.error_fault, WireFault::Malformed);
  EXPECT_EQ(result.message.error_message, "bad p-vector");
}

TEST(WireFormat, FrameReaderReassemblesArbitraryChunking) {
  Rng rng(17);
  std::vector<std::uint8_t> stream;
  encode_hello(stream);
  std::vector<SolveRequest> requests;
  for (int i = 0; i < 20; ++i) {
    requests.push_back(random_request(rng, static_cast<std::uint64_t>(i)));
    encode_request(stream, requests.back());
  }
  encode_shutdown(stream);

  FrameReader reader;
  std::size_t fed = 0;
  int frames = 0;
  int request_frames = 0;
  while (true) {
    DecodeResult result;
    while (reader.next(result)) {
      ASSERT_TRUE(result.ok()) << result.detail;
      ++frames;
      if (result.message.type == MessageType::Request) {
        EXPECT_EQ(result.message.request.graph,
                  requests[static_cast<std::size_t>(request_frames)].graph);
        ++request_frames;
      }
    }
    if (fed >= stream.size()) break;
    const std::size_t chunk = std::min<std::size_t>(
        static_cast<std::size_t>(rng.uniform_int(1, 37)), stream.size() - fed);
    reader.feed(stream.data() + fed, chunk);
    fed += chunk;
  }
  EXPECT_EQ(frames, 22);
  EXPECT_EQ(request_frames, 20);
}

TEST(WireFormat, TruncatedBodiesAreTypedFaultsNotCrashes) {
  Rng rng(23);
  const SolveRequest request = random_request(rng, 99);
  std::vector<std::uint8_t> frame;
  encode_request(frame, request);
  // Shrink the declared payload length to every possible smaller value:
  // the decoder must answer each with a typed fault (or, for a prefix that
  // happens to parse, a clean reject of trailing garbage) — never UB.
  const std::uint32_t full = static_cast<std::uint32_t>(frame.size() - 4);
  for (std::uint32_t declared = 1; declared < full; ++declared) {
    const DecodeResult result = decode_payload(frame.data() + 4, declared);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.fault, WireFault::None);
  }
}

TEST(WireFormat, SingleByteCorruptionNeverCrashes) {
  Rng rng(29);
  const SolveRequest request = random_request(rng, 7);
  std::vector<std::uint8_t> frame;
  encode_request(frame, request);
  // Flip bits byte by byte (skipping the frame length prefix, which the
  // oversized/short-read paths cover): the decoder must always return —
  // ok or typed fault — without crashing; run under Debug asserts in CI.
  for (std::size_t position = 4; position < frame.size(); ++position) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}, std::uint8_t{0xff}}) {
      std::vector<std::uint8_t> corrupted = frame;
      corrupted[position] ^= flip;
      const DecodeResult result =
          decode_payload(corrupted.data() + 4, corrupted.size() - 4);
      // A flipped id/priority byte still decodes; a flipped structural
      // byte must produce a typed fault. Either way: return, don't crash.
      if (!result.ok()) {
        EXPECT_NE(result.fault, WireFault::None);
      }
    }
  }
}

TEST(WireFormat, RandomGarbageStreamsOnlyProduceTypedFaults) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> garbage(static_cast<std::size_t>(rng.uniform_int(0, 512)));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    FrameReader reader;
    reader.feed(garbage.data(), garbage.size());
    DecodeResult result;
    int produced = 0;
    while (reader.next(result)) {
      ++produced;
      ASSERT_LE(produced, 200);  // no infinite frame loops on garbage
      if (!result.ok()) {
        EXPECT_TRUE(reader.poisoned());
        break;
      }
    }
  }
}

TEST(WireFormat, OversizedAndEmptyFramesPoisonTheStream) {
  {
    WireLimits limits;
    limits.max_frame_bytes = 64;
    FrameReader reader(limits);
    const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0x7f};
    reader.feed(huge, sizeof(huge));
    DecodeResult result;
    ASSERT_TRUE(reader.next(result));
    EXPECT_EQ(result.fault, WireFault::Oversized);
    EXPECT_TRUE(reader.poisoned());
    // A poisoned reader reports once, then refuses (caller must close).
    EXPECT_FALSE(reader.next(result));
  }
  {
    FrameReader reader;
    const std::uint8_t empty[4] = {0, 0, 0, 0};
    reader.feed(empty, sizeof(empty));
    DecodeResult result;
    ASSERT_TRUE(reader.next(result));
    EXPECT_EQ(result.fault, WireFault::Malformed);
  }
}

TEST(WireFormat, HandshakeFaultsAreTyped) {
  std::vector<std::uint8_t> hello;
  encode_hello(hello);
  {
    std::vector<std::uint8_t> wrong_magic = hello;
    wrong_magic[5] ^= 0xff;  // first magic byte (after len + type)
    EXPECT_EQ(decode_one(wrong_magic).fault, WireFault::BadMagic);
  }
  {
    std::vector<std::uint8_t> wrong_version = hello;
    wrong_version[9] ^= 0xff;  // version low byte
    EXPECT_EQ(decode_one(wrong_version).fault, WireFault::BadVersion);
  }
  {
    std::vector<std::uint8_t> bad_type = hello;
    bad_type[4] = 0x7f;  // unknown message type
    EXPECT_EQ(decode_one(bad_type).fault, WireFault::BadType);
  }
}

TEST(WireFormat, RequestLimitsAreEnforcedBeforeAllocation) {
  // A request whose graph header declares more vertices than the limit
  // must be refused by the header check, not by an allocation attempt.
  SolveRequest request;
  request.graph = path_graph(8);
  request.p = PVec::L21();
  std::vector<std::uint8_t> frame;
  encode_request(frame, request);
  WireLimits limits;
  limits.max_vertices = 4;
  const DecodeResult result = decode_payload(frame.data() + 4, frame.size() - 4, limits);
  EXPECT_EQ(result.fault, WireFault::Malformed);
  EXPECT_NE(result.detail.find("exceeds limit"), std::string::npos);

  WireLimits tight_pvec;
  tight_pvec.max_pvec_entries = 1;
  const DecodeResult pvec_result =
      decode_payload(frame.data() + 4, frame.size() - 4, tight_pvec);
  EXPECT_EQ(pvec_result.fault, WireFault::Malformed);
}

TEST(WireFormat, EncodeRefusesPVectorsTheFormatCannotCarry) {
  // k travels as one byte; the encoder must reject oversized vectors
  // locally instead of emitting a self-inconsistent frame that would
  // poison the pipelined connection server-side.
  SolveRequest request;
  request.graph = path_graph(3);
  request.p = PVec(std::vector<int>(256, 1));
  std::vector<std::uint8_t> out;
  EXPECT_THROW(encode_request(out, request), precondition_error);
}

TEST(WireFormat, EveryMessageTypeAndFaultHasAName) {
  for (int raw = static_cast<int>(MessageType::Hello);
       raw <= static_cast<int>(MessageType::StatsReply); ++raw) {
    EXPECT_STRNE(message_type_name(static_cast<MessageType>(raw)), "unknown");
  }
  for (int raw = 0; raw <= static_cast<int>(WireFault::Malformed); ++raw) {
    EXPECT_STRNE(wire_fault_name(static_cast<WireFault>(raw)), "unknown");
  }
  static_assert(message_type_name(MessageType::Request)[0] == 'r');
  static_assert(wire_fault_name(WireFault::Oversized)[0] == 'o');
}

// ------------------------------------------------- v2 stats frames + compat

TEST(WireFormat, VersionNegotiationAcceptsTheSupportedRange) {
  // A v1 Hello (pre-stats client) must still decode: the server keeps
  // serving old clients and simply refuses stats frames on them.
  for (std::uint16_t version = kWireMinVersion; version <= kWireVersion; ++version) {
    std::vector<std::uint8_t> bytes;
    encode_hello(bytes, version);
    const DecodeResult result = decode_one(bytes);
    ASSERT_TRUE(result.ok()) << result.detail;
    EXPECT_EQ(result.message.version, version);
  }
  // Below the floor and above the ceiling are typed faults.
  for (const std::uint16_t version :
       {std::uint16_t{0}, static_cast<std::uint16_t>(kWireVersion + 1)}) {
    std::vector<std::uint8_t> bytes;
    encode_hello(bytes, version);
    EXPECT_EQ(decode_one(bytes).fault, WireFault::BadVersion) << "version " << version;
  }
}

TEST(WireFormat, StatsFramesRoundTripEveryFormat) {
  for (const StatsFormat format : {StatsFormat::Json, StatsFormat::Prometheus, StatsFormat::Text,
                                   StatsFormat::Traces, StatsFormat::Journal,
                                   StatsFormat::Profile}) {
    std::vector<std::uint8_t> request_bytes;
    encode_stats_request(request_bytes, format);
    const DecodeResult request = decode_one(request_bytes);
    ASSERT_TRUE(request.ok()) << request.detail;
    ASSERT_EQ(request.message.type, MessageType::StatsRequest);
    EXPECT_EQ(request.message.stats_format, format);
    EXPECT_EQ(request.message.stats_since, 0u);

    const std::string payload =
        std::string("{\"counters\":{}} with \0 byte and utf8 \xc3\xa9", 40);
    std::vector<std::uint8_t> reply_bytes;
    encode_stats_reply(reply_bytes, format, payload);
    const DecodeResult reply = decode_one(reply_bytes);
    ASSERT_TRUE(reply.ok()) << reply.detail;
    ASSERT_EQ(reply.message.type, MessageType::StatsReply);
    EXPECT_EQ(reply.message.stats_format, format);
    EXPECT_EQ(reply.message.stats_payload, payload);
  }
}

TEST(WireFormat, StatsRequestSinceCursorRoundTrips) {
  // A nonzero cursor rides as a trailing u64; zero keeps the legacy
  // one-byte request bit-identical so old servers stay compatible.
  std::vector<std::uint8_t> legacy;
  encode_stats_request(legacy, StatsFormat::Journal);
  std::vector<std::uint8_t> with_cursor;
  encode_stats_request(with_cursor, StatsFormat::Journal, 0xfeedfacecafe1234ULL);
  EXPECT_EQ(with_cursor.size(), legacy.size() + 8);

  const DecodeResult decoded = decode_one(with_cursor);
  ASSERT_TRUE(decoded.ok()) << decoded.detail;
  EXPECT_EQ(decoded.message.stats_format, StatsFormat::Journal);
  EXPECT_EQ(decoded.message.stats_since, 0xfeedfacecafe1234ULL);

  // A partial cursor (any trailing length other than 0 or 8) is malformed.
  std::vector<std::uint8_t> truncated = with_cursor;
  truncated.resize(truncated.size() - 3);
  // Fix up the (little-endian) frame length prefix for the shorter payload.
  const std::uint32_t new_len = static_cast<std::uint32_t>(truncated.size() - 4);
  truncated[0] = static_cast<std::uint8_t>(new_len & 0xff);
  truncated[1] = static_cast<std::uint8_t>((new_len >> 8) & 0xff);
  truncated[2] = static_cast<std::uint8_t>((new_len >> 16) & 0xff);
  truncated[3] = static_cast<std::uint8_t>((new_len >> 24) & 0xff);
  EXPECT_EQ(decode_one(truncated).fault, WireFault::Malformed);
}

TEST(WireFormat, StatsFramesRejectBadFormatBytes) {
  std::vector<std::uint8_t> request_bytes;
  encode_stats_request(request_bytes, StatsFormat::Json);
  // The format byte is the last payload byte of a StatsRequest.
  request_bytes.back() = 0;  // below the valid range
  EXPECT_EQ(decode_one(request_bytes).fault, WireFault::Malformed);
  request_bytes.back() = 99;  // above it
  EXPECT_EQ(decode_one(request_bytes).fault, WireFault::Malformed);
}

TEST(WireFormat, TruncatedStatsFramesAreTypedFaults) {
  std::vector<std::uint8_t> frame;
  encode_stats_reply(frame, StatsFormat::Json, "{\"counters\":{\"requests_total\":12}}");
  const std::uint32_t full = static_cast<std::uint32_t>(frame.size() - 4);
  for (std::uint32_t declared = 1; declared < full; ++declared) {
    const DecodeResult result = decode_payload(frame.data() + 4, declared);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.fault, WireFault::None);
  }
}

TEST(WireFormat, CorruptedStatsFramesNeverCrash) {
  std::vector<std::uint8_t> frame;
  encode_stats_reply(frame, StatsFormat::Prometheus, "lptsp_requests_total 12\n");
  for (std::size_t position = 4; position < frame.size(); ++position) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}, std::uint8_t{0xff}}) {
      std::vector<std::uint8_t> corrupted = frame;
      corrupted[position] ^= flip;
      const DecodeResult result = decode_payload(corrupted.data() + 4, corrupted.size() - 4);
      if (!result.ok()) {
        EXPECT_NE(result.fault, WireFault::None);
      }
    }
  }
}

}  // namespace
}  // namespace lptsp
