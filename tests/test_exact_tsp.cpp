#include <gtest/gtest.h>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/held_karp.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance random_instance(int n, Rng& rng, Weight lo = 1, Weight hi = 9) {
  MetricInstance instance(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      instance.set_weight(i, j, rng.uniform_int(static_cast<int>(lo), static_cast<int>(hi)));
    }
  }
  return instance;
}

TEST(BruteForce, TinyInstances) {
  MetricInstance instance(3);
  instance.set_weight(0, 1, 1);
  instance.set_weight(1, 2, 1);
  instance.set_weight(0, 2, 5);
  const PathSolution solution = brute_force_path(instance);
  EXPECT_EQ(solution.cost, 2);
  EXPECT_TRUE(is_valid_order(solution.order, 3));
  EXPECT_EQ(path_length(instance, solution.order), solution.cost);
}

TEST(BruteForce, SingleVertex) {
  const PathSolution solution = brute_force_path(MetricInstance(1));
  EXPECT_EQ(solution.cost, 0);
  EXPECT_EQ(solution.order, (Order{0}));
}

TEST(BruteForce, SizeCap) {
  EXPECT_THROW(brute_force_path(MetricInstance(12)), precondition_error);
}

TEST(HeldKarp, MatchesKnownOptimum) {
  MetricInstance instance(4);
  instance.set_weight(0, 1, 1);
  instance.set_weight(1, 2, 1);
  instance.set_weight(2, 3, 1);
  instance.set_weight(0, 2, 2);
  instance.set_weight(1, 3, 2);
  instance.set_weight(0, 3, 2);
  const PathSolution solution = held_karp_path(instance);
  EXPECT_EQ(solution.cost, 3);
}

TEST(HeldKarp, SizeAndOverflowGuards) {
  HeldKarpOptions options;
  options.max_n = 10;
  EXPECT_THROW(held_karp_path(MetricInstance(11), options), precondition_error);

  MetricInstance huge(3);
  huge.set_weight(0, 1, Weight{1} << 40);
  huge.set_weight(1, 2, Weight{1} << 40);
  huge.set_weight(0, 2, Weight{1} << 40);
  EXPECT_THROW(held_karp_path(huge), precondition_error);
}

TEST(HeldKarp, FixedStartRespected) {
  Rng rng(3);
  const MetricInstance instance = random_instance(7, rng);
  for (int start = 0; start < 7; ++start) {
    HeldKarpOptions options;
    options.fixed_start = start;
    const PathSolution solution = held_karp_path(instance, options);
    EXPECT_EQ(solution.order.front(), start);
    EXPECT_EQ(path_length(instance, solution.order), solution.cost);
  }
}

TEST(HeldKarp, FixedStartNeverBeatsFree) {
  Rng rng(4);
  const MetricInstance instance = random_instance(7, rng);
  const Weight free_cost = held_karp_path(instance).cost;
  for (int start = 0; start < 7; ++start) {
    HeldKarpOptions options;
    options.fixed_start = start;
    EXPECT_GE(held_karp_path(instance, options).cost, free_cost);
  }
}

TEST(HeldKarp, InvalidFixedStart) {
  HeldKarpOptions options;
  options.fixed_start = 5;
  EXPECT_THROW(held_karp_path(MetricInstance(3), options), precondition_error);
}

class ExactCross : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 131 + 7)};
};

TEST_P(ExactCross, HeldKarpEqualsBruteForce) {
  for (int n = 2; n <= 8; ++n) {
    const MetricInstance instance = random_instance(n, rng_);
    const PathSolution hk = held_karp_path(instance);
    const PathSolution bf = brute_force_path(instance);
    EXPECT_EQ(hk.cost, bf.cost) << "n = " << n;
    EXPECT_EQ(path_length(instance, hk.order), hk.cost);
  }
}

TEST_P(ExactCross, ParallelLayersMatchSerial) {
  const MetricInstance instance = random_instance(9, rng_);
  HeldKarpOptions parallel_options;
  parallel_options.threads = 0;  // shared pool
  EXPECT_EQ(held_karp_path(instance).cost, held_karp_path(instance, parallel_options).cost);
}

TEST_P(ExactCross, ReducedInstancesSolvedExactly) {
  // End-to-end: reduced labeling instances are valid HK inputs.
  const Graph graph = random_with_diameter_at_most(8, 2, 0.3, rng_);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  const PathSolution hk = held_karp_path(reduced.instance);
  const PathSolution bf = brute_force_path(reduced.instance);
  EXPECT_EQ(hk.cost, bf.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactCross, ::testing::Range(0, 10));

}  // namespace
}  // namespace lptsp
