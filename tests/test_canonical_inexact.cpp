#include <gtest/gtest.h>

#include <set>

#include "core/labeling.hpp"
#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "service/batch_solver.hpp"
#include "service/canonical_key.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

// The canonicalization fallback path: on pathologically symmetric graphs
// the individualization search exhausts its branch budget and reports
// exact = false. Such forms are valid relabelings of THIS graph but not
// cross-request invariants, so the service must bypass the solve cache
// entirely — and still return correct, verified results.

/// Cocktail-party graph K_{5x2} (complement of a perfect matching):
/// connected, diameter 2, and WL-indistinguishable — the class of all 10
/// vertices is not uniformly adjacent, so the cheap single-orbit pruning
/// cannot collapse it and a small budget exhausts immediately.
Graph cocktail_party() { return complete_multipartite({2, 2, 2, 2, 2}); }

/// Many disjoint triangles: the ROADMAP's canonical example of classes
/// that are unions of several orbits (disconnected, so the service answer
/// is a typed status rather than a labeling).
Graph many_triangles(int triangles) {
  Graph graph(3 * triangles);
  for (int t = 0; t < triangles; ++t) {
    graph.add_edge(3 * t, 3 * t + 1);
    graph.add_edge(3 * t + 1, 3 * t + 2);
    graph.add_edge(3 * t + 2, 3 * t);
  }
  return graph;
}

TEST(CanonicalInexact, SymmetricFamiliesExhaustTinyBudgetsButStayValidRelabelings) {
  CanonicalFormOptions options;
  options.branch_budget = 2;
  for (const Graph& graph : {cocktail_party(), many_triangles(6)}) {
    const CanonicalForm form = canonical_form(graph, options);
    EXPECT_FALSE(form.exact);
    const std::set<int> seen(form.to_canonical.begin(), form.to_canonical.end());
    EXPECT_EQ(static_cast<int>(seen.size()), graph.n());
    EXPECT_EQ(relabel(graph, form.to_canonical).edges(), form.edges);
  }
}

TEST(CanonicalInexact, ServiceBypassesCacheAndStaysCorrect) {
  BatchSolver::Options options;
  options.canonical.branch_budget = 2;
  BatchSolver solver(options);

  const Graph graph = cocktail_party();
  SolveRequest request;
  request.graph = graph;
  request.p = PVec::L21();

  // Two identical requests: with an exact form the second would be a
  // result-cache hit; inexact forms must solve fresh both times.
  request.id = 1;
  const SolveResponse first = solver.solve_one(request);
  request.id = 2;
  const SolveResponse second = solver.solve_one(request);

  for (const SolveResponse* response : {&first, &second}) {
    ASSERT_TRUE(response->ok()) << response->message;
    EXPECT_EQ(response->source, ResponseSource::Solved);
    EXPECT_FALSE(response->reduction_cached);
    EXPECT_TRUE(is_valid_labeling(graph, PVec::L21(), response->labeling));
    EXPECT_EQ(response->labeling.span(), response->span);
    // n = 10: Held-Karp certifies the optimum, so both fresh solves must
    // agree on the span even though their inexact relabelings differ.
    EXPECT_TRUE(response->optimal);
  }
  EXPECT_EQ(first.span, second.span);
  EXPECT_EQ(solver.engine_solves(), 2u);  // no dedupe, no cache
  EXPECT_EQ(solver.cache().size(), 0u);   // nothing was allowed in
  const CacheStats stats = solver.cache().stats();
  EXPECT_EQ(stats.result_hits, 0u);
  EXPECT_EQ(stats.insertions, 0u);

  // A relabeled copy is the same instance; without a canonical identity
  // it must also solve fresh — and to the same optimal span.
  Rng rng(17);
  request.id = 3;
  request.graph = relabel(graph, rng.permutation(graph.n()));
  const SolveResponse relabeled = solver.solve_one(request);
  ASSERT_TRUE(relabeled.ok());
  EXPECT_EQ(relabeled.span, first.span);
  EXPECT_EQ(solver.engine_solves(), 3u);
}

TEST(CanonicalInexact, BatchDedupeIsDisabledForInexactForms) {
  BatchSolver::Options options;
  options.canonical.branch_budget = 2;
  BatchSolver solver(options);

  Rng rng(19);
  const Graph graph = cocktail_party();
  std::vector<SolveRequest> requests;
  for (std::uint64_t id = 0; id < 4; ++id) {
    SolveRequest request;
    request.graph = id == 0 ? graph : relabel(graph, rng.permutation(graph.n()));
    request.p = PVec::L21();
    request.id = id;
    requests.push_back(std::move(request));
  }
  const std::vector<SolveResponse> responses = solver.solve_batch(requests);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].message;
    EXPECT_TRUE(is_valid_labeling(requests[i].graph, PVec::L21(), responses[i].labeling));
    EXPECT_EQ(responses[i].span, responses[0].span);
    EXPECT_EQ(responses[i].source, ResponseSource::Solved);  // nobody coalesced
  }
  EXPECT_EQ(solver.engine_solves(), 4u);
}

TEST(CanonicalInexact, DisconnectedSymmetricGraphsGetTypedStatusWithoutCachePollution) {
  BatchSolver::Options options;
  options.canonical.branch_budget = 2;
  BatchSolver solver(options);

  SolveRequest request;
  request.graph = many_triangles(6);
  request.p = PVec::L21();
  request.id = 1;
  const SolveResponse first = solver.solve_one(request);
  request.id = 2;
  const SolveResponse second = solver.solve_one(request);
  for (const SolveResponse* response : {&first, &second}) {
    EXPECT_EQ(response->status, SolveStatus::Disconnected);
    EXPECT_FALSE(response->message.empty());
  }
  EXPECT_EQ(solver.engine_solves(), 0u);
  EXPECT_EQ(solver.cache().size(), 0u);
}

}  // namespace
}  // namespace lptsp
