#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "util/check.hpp"
#include "core/exact_bb.hpp"
#include "core/known_classes.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

/// Exact lambda_{2,1} by the strongest applicable in-repo oracle.
Weight exact_l21(const Graph& graph) {
  if (is_connected(graph) && graph.n() >= 2 && diameter(graph) <= 2) {
    SolveOptions options;
    options.engine = Engine::HeldKarp;
    return solve_labeling(graph, PVec::L21(), options).span;
  }
  return exact_labeling_branch_and_bound(graph, PVec::L21()).span;
}

TEST(KnownClasses, PathFormula) {
  for (int n = 1; n <= 9; ++n) {
    EXPECT_EQ(l21_span_path(n), exact_l21(path_graph(n))) << "n = " << n;
  }
}

TEST(KnownClasses, CycleFormula) {
  for (int n = 3; n <= 9; ++n) {
    EXPECT_EQ(l21_span_cycle(n), exact_l21(cycle_graph(n))) << "n = " << n;
  }
}

TEST(KnownClasses, WheelFormula) {
  for (int n = 4; n <= 12; ++n) {
    SolveOptions options;
    options.engine = Engine::HeldKarp;
    EXPECT_EQ(l21_span_wheel(n), solve_labeling(wheel_graph(n), PVec::L21(), options).span)
        << "n = " << n;
  }
}

TEST(KnownClasses, CompleteAndStarAndBipartite) {
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  for (int n = 2; n <= 8; ++n) {
    EXPECT_EQ(l21_span_complete(n), solve_labeling(complete_graph(n), PVec::L21(), options).span);
  }
  for (int leaves = 2; leaves <= 8; ++leaves) {
    EXPECT_EQ(l21_span_star(leaves),
              solve_labeling(star_graph(leaves + 1), PVec::L21(), options).span);
  }
  for (int a = 1; a <= 4; ++a) {
    for (int b = a; b <= 4; ++b) {
      if (a == 1 && b == 1) continue;  // K_{1,1} = K_2 is diameter 1
      EXPECT_EQ(l21_span_complete_bipartite(a, b),
                solve_labeling(complete_bipartite(a, b), PVec::L21(), options).span)
          << a << "," << b;
    }
  }
}

TEST(KnownClasses, InputValidation) {
  EXPECT_THROW(l21_span_path(0), precondition_error);
  EXPECT_THROW(l21_span_cycle(2), precondition_error);
  EXPECT_THROW(l21_span_wheel(3), precondition_error);
}

TEST(Bounds, DegreeBoundReproducesDeltaPlusOne) {
  // Classic Griggs–Yeh: lambda_{2,1} >= Delta + 1.
  for (const Graph& graph : {star_graph(7), wheel_graph(8), petersen_graph()}) {
    EXPECT_EQ(span_lower_bound_degree(graph, PVec::L21()), max_degree(graph) + 1);
  }
}

TEST(Bounds, SmallDiameterBoundRequiresScope) {
  EXPECT_THROW(span_lower_bound_small_diameter(path_graph(5), PVec::L21()), precondition_error);
  EXPECT_EQ(span_lower_bound_small_diameter(complete_graph(5), PVec::L21()), 4);
}

class BoundsSandwich : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 613 + 17)};
};

TEST_P(BoundsSandwich, LowerExactUpperOrdering) {
  const Graph graph = random_with_diameter_at_most(8, 2, 0.35, rng_);
  for (const PVec& p : {PVec::L21(), PVec::Lpq(3, 2), PVec({2, 2})}) {
    SolveOptions options;
    options.engine = Engine::HeldKarp;
    const Weight exact = solve_labeling(graph, p, options).span;
    EXPECT_LE(span_lower_bound(graph, p), exact) << p.to_string();
    EXPECT_GE(span_upper_bound_greedy(graph, p), exact) << p.to_string();
  }
}

TEST_P(BoundsSandwich, WorksBeyondReductionScope) {
  // Larger-diameter graphs: bounds still bracket the direct exact solver.
  const Graph graph = random_connected(8, 0.25, rng_);
  const PVec p = PVec::L21();
  const Weight exact = exact_labeling_branch_and_bound(graph, p).span;
  EXPECT_LE(span_lower_bound(graph, p), exact);
  EXPECT_GE(span_upper_bound_greedy(graph, p), exact);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsSandwich, ::testing::Range(0, 8));

}  // namespace
}  // namespace lptsp
