#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "service/batch_solver.hpp"
#include "service/portfolio.hpp"
#include "service/tuner.hpp"
#include "store/backend.hpp"
#include "store/codec.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

constexpr std::chrono::milliseconds kDeadline{250};

TunerOptions fast_options() {
  TunerOptions options;
  options.decay_every = 8;
  options.skip_score = 4.0;
  options.reprobe_every = 4;
  options.effort_update_every = 4;
  return options;
}

/// Race the tuner into a trimmed state: contested heuristic wins until the
/// heuristic score clears skip_score.
void feed_heuristic_wins(EngineTuner& tuner, int bucket, int count) {
  for (int i = 0; i < count; ++i) {
    (void)tuner.admit_exact(bucket);
    tuner.observe_race(bucket, /*exact_won=*/false, /*contested=*/true, 1'000'000, 0);
  }
}

TEST(EngineTuner, FreshBucketAlwaysAdmitsExact) {
  EngineTuner tuner(fast_options(), kDeadline);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(tuner.admit_exact(4));
  }
  EXPECT_EQ(tuner.pretrim_skips(), 0u);
}

TEST(EngineTuner, TrimsAfterHeuristicDominanceButKeepsReprobing) {
  EngineTuner tuner(fast_options(), kDeadline);
  feed_heuristic_wins(tuner, 4, 5);  // score 5 > skip_score 4, no exact wins

  int admitted = 0;
  for (int i = 0; i < 8; ++i) {
    if (tuner.admit_exact(4)) ++admitted;
  }
  // Trimmed: exactly the epsilon re-probes (every 4th skip) get through.
  EXPECT_EQ(admitted, 2);
  EXPECT_EQ(tuner.reprobes(), 2u);
  // 6 skips in the loop above plus the one trimmed admit inside
  // feed_heuristic_wins (the 5th call, after the score crossed).
  EXPECT_EQ(tuner.pretrim_skips(), 7u);
  // Other buckets are untouched.
  EXPECT_TRUE(tuner.admit_exact(7));
}

TEST(EngineTuner, ReprobeWinsUntrimTheBucket) {
  EngineTuner tuner(fast_options(), kDeadline);
  feed_heuristic_wins(tuner, 4, 5);
  ASSERT_FALSE(tuner.admit_exact(4));

  // The exact engine starts winning its re-probes; one contested win
  // clears the presence floor and the trim lifts immediately.
  tuner.observe_race(4, /*exact_won=*/true, /*contested=*/true, 1'000'000, 0);
  EXPECT_TRUE(tuner.admit_exact(4));
}

TEST(EngineTuner, DecayAgesOutHeuristicDominance) {
  TunerOptions options = fast_options();
  options.reprobe_every = 0;  // no re-probe: only decay can recover this bucket
  EngineTuner tuner(options, kDeadline);
  feed_heuristic_wins(tuner, 4, 5);
  ASSERT_FALSE(tuner.admit_exact(4));

  // Uncontested races (the trimmed steady state) still count as
  // observations, so the heuristic score halves every decay_every of them
  // and eventually drops below skip_score.
  for (int i = 0; i < 32 && !tuner.admit_exact(4); ++i) {
    tuner.observe_race(4, false, /*contested=*/false, 1'000'000, 0);
  }
  EXPECT_TRUE(tuner.admit_exact(4));
}

TEST(EngineTuner, SeededPoisonedTableIsCappedAndRecoverable) {
  EngineTuner tuner(fast_options(), kDeadline);
  // A poisoned persisted table: 100k heuristic wins in bucket 4, zero
  // exact. Under the frozen rule this disabled the exact engine forever.
  std::vector<std::uint64_t> counts(32 * 3, 0);
  counts[4 * 3 + 2] = 100'000;
  tuner.seed_from_win_table(counts, 3);

  EXPECT_FALSE(tuner.admit_exact(4));  // biased: starts trimmed...
  int admitted = 0;
  for (int i = 0; i < 8; ++i) {
    if (tuner.admit_exact(4)) ++admitted;
  }
  EXPECT_GT(admitted, 0);  // ...but the re-probe still fires.

  // The seed is capped (skip_score * 4 = 16), so a handful of decay
  // windows erases it: 16 -> 8 -> 4(=skip_score) -> 2 < skip_score.
  for (int i = 0; i < 24; ++i) {
    tuner.observe_race(4, false, false, 1'000'000, 0);
  }
  EXPECT_TRUE(tuner.admit_exact(4));
}

TEST(EngineTuner, WrongShapeSeedIsIgnored) {
  EngineTuner tuner(fast_options(), kDeadline);
  tuner.seed_from_win_table(std::vector<std::uint64_t>(7, 1'000'000), 3);
  tuner.seed_from_win_table(std::vector<std::uint64_t>(32 * 2, 1'000'000), 2);
  EXPECT_TRUE(tuner.admit_exact(4));
}

TEST(EngineTuner, EffortShedsOnDeadlineMisses) {
  EngineTuner tuner(fast_options(), kDeadline);
  ASSERT_EQ(tuner.effort(4).percent, 100);
  // Four races at a 10ms budget, all overrunning: the window closes with
  // 0% hits and effort steps down by 25.
  for (int i = 0; i < 4; ++i) {
    tuner.observe_race(4, false, false, 50'000'000, 10);
  }
  EXPECT_EQ(tuner.effort(4).percent, 75);
  EXPECT_EQ(tuner.effort_changes(), 1u);
  // Unrelated buckets keep their effort.
  EXPECT_EQ(tuner.effort(7).percent, 100);
}

TEST(EngineTuner, EffortRaisesOnComfortableSlack) {
  EngineTuner tuner(fast_options(), kDeadline);
  // Every race finishes at 1ms of a 100ms budget: all hits, ~99% slack.
  for (int i = 0; i < 4; ++i) {
    tuner.observe_race(4, false, false, 1'000'000, 100);
  }
  EXPECT_EQ(tuner.effort(4).percent, 125);
  // The Held-Karp overrun predicate scales with effort.
  EXPECT_DOUBLE_EQ(tuner.effort(4).hk_overrun_factor, 5.0);
}

TEST(EngineTuner, EffortIsClampedAtBothEnds) {
  EngineTuner tuner(fast_options(), kDeadline);
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < 4; ++i) tuner.observe_race(4, false, false, 50'000'000, 10);
  }
  EXPECT_EQ(tuner.effort(4).percent, 25);  // effort_min_percent
  for (int round = 0; round < 32; ++round) {
    for (int i = 0; i < 4; ++i) tuner.observe_race(4, false, false, 1'000'000, 100);
  }
  EXPECT_EQ(tuner.effort(4).percent, 400);  // effort_max_percent
  EXPECT_EQ(tuner.effort(4).hk_overrun_factor, 16.0);  // factor cap
}

TEST(EngineTuner, PredictedWorkFallsBackToBudgetAndIsCapped) {
  EngineTuner tuner(fast_options(), kDeadline);
  // No history: a request with a 40ms deadline prices at the full budget.
  EXPECT_EQ(tuner.predicted_work_ns(12, 40), 40'000'000u);
  // No deadline either: the service default (250ms) prices it.
  EXPECT_EQ(tuner.predicted_work_ns(12, 0), 250'000'000u);

  // Eight slow observed races at this size: the quantile takes over, but
  // the prediction stays capped at 2x the request's own deadline.
  for (int i = 0; i < 8; ++i) {
    tuner.observe_race(4, false, false, 900'000'000, 0);
  }
  EXPECT_EQ(tuner.predicted_work_ns(12, 40), 80'000'000u);
  // A generous deadline sees the raw quantile (log2-bucketed, so only
  // exact to within one bucket — but far above the 40ms fallback).
  EXPECT_GE(tuner.predicted_work_ns(12, 10'000), 500'000'000u);
  // The floor: nothing is ever priced below 1us.
  EXPECT_GE(tuner.predicted_work_ns(1, 0), 1'000u);
}

TEST(EngineTuner, DisabledTunerIsInert) {
  TunerOptions options = fast_options();
  options.enabled = false;
  EngineTuner tuner(options, kDeadline);
  feed_heuristic_wins(tuner, 4, 20);
  EXPECT_TRUE(tuner.admit_exact(4));
  EXPECT_EQ(tuner.effort(4).percent, 100);
  EXPECT_EQ(tuner.pretrim_skips(), 0u);
  EXPECT_FALSE(tuner.to_json().empty());
}

TEST(EngineTuner, ToJsonListsOnlyObservedBuckets) {
  EngineTuner tuner(fast_options(), kDeadline);
  const std::string empty = tuner.to_json();
  EXPECT_NE(empty.find("\"buckets\":[]"), std::string::npos);

  tuner.observe_race(4, true, true, 2'000'000, 0);
  const std::string one = tuner.to_json();
  EXPECT_NE(one.find("\"bucket\":4"), std::string::npos);
  EXPECT_NE(one.find("\"exact_score\":1.00"), std::string::npos);
  EXPECT_EQ(one.find("\"bucket\":5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The regression that motivated this layer, at service level: a restart
// over a heuristic-poisoned persisted win table must not freeze the exact
// engine out (the old cumulative skip rule did exactly that).
// ---------------------------------------------------------------------------

TEST(TunerService, RestartOverPoisonedWinTableStillRunsExactEngine) {
  const std::string path = ::testing::TempDir() + "lptsp_poisoned_" +
                           std::to_string(::getpid()) + ".store";
  std::remove(path.c_str());
  {
    PersistentBackend::Options store_options;
    store_options.path = path;
    std::string error;
    auto backend = PersistentBackend::open(store_options, error);
    ASSERT_NE(backend, nullptr) << error;
    // Every n=12-sized race "won" by the heuristic, none by an exact
    // engine — the poison that used to trip the frozen skip rule.
    WinTableRecord table;
    table.buckets = EnginePortfolio::kBuckets;
    table.slots = EnginePortfolio::kSlots;
    table.counts.assign(
        static_cast<std::size_t>(EnginePortfolio::kBuckets) * EnginePortfolio::kSlots, 0);
    table.counts[4 * EnginePortfolio::kSlots + 2] = 1'000;  // bucket of n=12, ChainedLK slot
    backend->put_win_table(table);
  }

  BatchSolver::Options options;
  options.store_path = path;
  options.use_cache = false;  // every request must race, nothing may hit
  options.request_workers = 2;
  options.engine_workers = 2;
  BatchSolver solver(options);

  Rng rng(11);
  SolveRequest request;
  request.p = PVec::L21();
  bool exact_won = false;
  // At n=12 with the default (generous) deadline Held-Karp finishes and
  // wins ties against the heuristic, so a single admitted re-probe is
  // enough to put an exact win on the board.
  for (int i = 0; i < 64 && !exact_won; ++i) {
    request.graph = random_with_diameter_at_most(12, 2, 0.3, rng);
    const SolveResponse response = solver.solve_one(request);
    ASSERT_TRUE(response.ok()) << response.message;
    exact_won = solver.portfolio().wins(12, Engine::HeldKarp) +
                    solver.portfolio().wins(12, Engine::BranchBound) >
                0;
  }
  EXPECT_TRUE(exact_won)
      << "poisoned persisted win table froze the exact engine out: no exact win "
      << "recorded in 64 races (re-probe should fire every few skips)";
  EXPECT_GT(solver.tuner().reprobes() + solver.portfolio().wins(12, Engine::HeldKarp), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lptsp
