/// Differential tests for the ISA kernel tiers (src/kernels/): every tier
/// this machine can run — scalar, AVX2, AVX-512 — is exercised against the
/// scalar reference on the same inputs. Widths deliberately straddle the
/// vector and word boundaries (1, 63, 64, 65, 127, 129) so a tail-masking
/// bug in any wider tier shows up as a one-lane disagreement, not a crash.

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

using kernels::KernelTable;

using kernels::supported_tiers;

constexpr int kAdversarialWidths[] = {1, 63, 64, 65, 127, 129};

TEST(KernelDispatch, TableForClampsToDetected) {
  EXPECT_EQ(kernels::kernel_table_for(IsaTier::Scalar).tier, IsaTier::Scalar);
  for (const IsaTier tier : {IsaTier::Avx2, IsaTier::Avx512}) {
    const KernelTable& table = kernels::kernel_table_for(tier);
    EXPECT_LE(static_cast<int>(table.tier), static_cast<int>(tier));
    EXPECT_LE(static_cast<int>(table.tier), static_cast<int>(kernels::detected_isa_tier()));
    ASSERT_NE(table.diam2_row, nullptr);
    ASSERT_NE(table.hk_min_i16, nullptr);
    ASSERT_NE(table.hk_min_i32, nullptr);
    ASSERT_NE(table.weight_range_min, nullptr);
    ASSERT_NE(table.weight_range_count_eq, nullptr);
  }
}

TEST(KernelDispatch, EnvParsing) {
  EXPECT_EQ(parse_isa_tier("scalar"), IsaTier::Scalar);
  EXPECT_EQ(parse_isa_tier("AVX2"), IsaTier::Avx2);
  EXPECT_EQ(parse_isa_tier("Avx512"), IsaTier::Avx512);
  EXPECT_FALSE(parse_isa_tier("avx-512").has_value());
  EXPECT_FALSE(parse_isa_tier("").has_value());
  EXPECT_FALSE(parse_isa_tier("sse").has_value());

  // Save/restore the real override: under the forced-scalar CI leg this
  // variable pins the whole test binary, and this test must not drop it.
  const char* prior = std::getenv("LPTSP_FORCE_ISA");
  const std::string saved = prior != nullptr ? prior : "";
  ::setenv("LPTSP_FORCE_ISA", "avx2", 1);
  EXPECT_EQ(forced_isa_tier_from_env(), IsaTier::Avx2);
  ::setenv("LPTSP_FORCE_ISA", "nonsense", 1);
  EXPECT_FALSE(forced_isa_tier_from_env().has_value());
  ::unsetenv("LPTSP_FORCE_ISA");
  EXPECT_FALSE(forced_isa_tier_from_env().has_value());
  if (prior != nullptr) ::setenv("LPTSP_FORCE_ISA", saved.c_str(), 1);
}

TEST(KernelDispatch, SetIsaTierSwitchesActiveTable) {
  const IsaTier detected = kernels::detected_isa_tier();
  // Restore what was ACTIVE, not what was detected: under the
  // forced-scalar CI leg the two differ, and this test must hand the
  // rest of the binary back its pinned tier.
  const IsaTier restore = kernels::active_isa_tier();
  for (const IsaTier tier : supported_tiers()) {
    kernels::set_isa_tier(tier);
    EXPECT_EQ(kernels::active_isa_tier(), tier);
  }
  // Requesting wider than detected clamps instead of handing out
  // unexecutable code.
  kernels::set_isa_tier(IsaTier::Avx512);
  EXPECT_LE(static_cast<int>(kernels::active_isa_tier()), static_cast<int>(detected));
  kernels::set_isa_tier(restore);
}

/// Run one tier's diam2 kernel against the scalar tier on every source of
/// `graph`, with sentinel-prefilled outputs so "wrote where it should not
/// have" is as detectable as "wrote the wrong value".
void expect_diam2_matches_scalar(const Graph& graph, const KernelTable& table,
                                 const char* label) {
  const KernelTable& scalar = kernels::kernel_table_for(IsaTier::Scalar);
  const int n = graph.n();
  const int words = graph.words_per_row();
  constexpr int kSentinel = -7777;
  std::vector<int> got(static_cast<std::size_t>(n)), want(static_cast<std::size_t>(n));
  for (int src = 0; src < n; ++src) {
    std::fill(got.begin(), got.end(), kSentinel);
    std::fill(want.begin(), want.end(), kSentinel);
    const bool ok_got = table.diam2_row(graph.adjacency_bits(), words, n, src, got.data());
    const bool ok_want = scalar.diam2_row(graph.adjacency_bits(), words, n, src, want.data());
    ASSERT_EQ(ok_got, ok_want) << label << " tier=" << isa_tier_name(table.tier)
                               << " src=" << src;
    for (int v = 0; v < n; ++v) {
      ASSERT_EQ(got[static_cast<std::size_t>(v)], want[static_cast<std::size_t>(v)])
          << label << " tier=" << isa_tier_name(table.tier) << " src=" << src << " v=" << v;
    }
    if (ok_got) {
      // Success rows are also checked against ground truth, not just
      // scalar agreement.
      const auto truth = bfs_distances(graph, src);
      for (int v = 0; v < n; ++v) {
        ASSERT_EQ(got[static_cast<std::size_t>(v)], truth[static_cast<std::size_t>(v)])
            << label << " tier=" << isa_tier_name(table.tier) << " src=" << src << " v=" << v;
      }
    }
  }
}

TEST(KernelDispatch, Diam2RowDifferentialErdosRenyi) {
  Rng rng(101);
  for (const IsaTier tier : supported_tiers()) {
    const KernelTable& table = kernels::kernel_table_for(tier);
    for (const int n : kAdversarialWidths) {
      for (const double p : {0.05, 0.3, 0.8}) {
        for (int trial = 0; trial < 2; ++trial) {
          expect_diam2_matches_scalar(erdos_renyi(n, p, rng), table, "erdos-renyi");
        }
      }
    }
  }
}

TEST(KernelDispatch, Diam2RowDifferentialGeneratorFamilies) {
  Rng rng(103);
  for (const IsaTier tier : supported_tiers()) {
    const KernelTable& table = kernels::kernel_table_for(tier);
    expect_diam2_matches_scalar(star_graph(129), table, "star");
    expect_diam2_matches_scalar(complete_graph(65), table, "complete");
    expect_diam2_matches_scalar(complete_bipartite(63, 66), table, "bipartite");
    expect_diam2_matches_scalar(path_graph(127), table, "path");  // always bails: diam >> 2
    expect_diam2_matches_scalar(petersen_graph(), table, "petersen");
    expect_diam2_matches_scalar(Graph(64), table, "edgeless");
    expect_diam2_matches_scalar(random_with_diameter_at_most(65, 2, 0.1, rng), table, "diam2");
    expect_diam2_matches_scalar(random_with_diameter_at_most(127, 3, 0.05, rng), table, "diam3");
  }
}

/// Random Held-Karp layer rows over the DP's real domain: entries in
/// [0, kInf] with kInf sentinels sprinkled in (masked sources), plus
/// all-kInf rows (fully masked, the fixed_start case).
template <typename Cost, typename Fn>
void hk_min_differential(Fn kernel_of, std::uint64_t seed) {
  constexpr Cost kInf = std::numeric_limits<Cost>::max() / 2;
  const KernelTable& scalar = kernels::kernel_table_for(IsaTier::Scalar);
  Rng rng(seed);
  for (const IsaTier tier : supported_tiers()) {
    const KernelTable& table = kernels::kernel_table_for(tier);
    const auto kernel = kernel_of(table);
    const auto reference = kernel_of(scalar);
    std::vector<int> widths(std::begin(kAdversarialWidths), std::end(kAdversarialWidths));
    for (int n = 2; n <= 24; ++n) widths.push_back(n);  // every real DP size
    for (const int n : widths) {
      std::vector<Cost> dp(static_cast<std::size_t>(n)), w(static_cast<std::size_t>(n));
      for (int trial = 0; trial < 8; ++trial) {
        for (int j = 0; j < n; ++j) {
          const bool masked = rng.uniform_index(4) == 0;
          dp[static_cast<std::size_t>(j)] =
              masked ? kInf : static_cast<Cost>(rng.uniform_index(static_cast<std::size_t>(kInf)));
          w[static_cast<std::size_t>(j)] =
              static_cast<Cost>(rng.uniform_index(static_cast<std::size_t>(kInf)));
        }
        ASSERT_EQ(kernel(dp.data(), w.data(), n), reference(dp.data(), w.data(), n))
            << "tier=" << isa_tier_name(table.tier) << " n=" << n << " trial=" << trial;
      }
      std::fill(dp.begin(), dp.end(), kInf);
      std::fill(w.begin(), w.end(), static_cast<Cost>(1));
      ASSERT_EQ(kernel(dp.data(), w.data(), n), kInf)
          << "all-masked row must reduce to the kInf identity, tier="
          << isa_tier_name(table.tier) << " n=" << n;
    }
  }
}

TEST(KernelDispatch, HeldKarpMinReduceInt16Differential) {
  hk_min_differential<std::int16_t>([](const KernelTable& t) { return t.hk_min_i16; }, 211);
}

TEST(KernelDispatch, HeldKarpMinReduceInt32Differential) {
  hk_min_differential<std::int32_t>([](const KernelTable& t) { return t.hk_min_i32; }, 223);
}

TEST(KernelDispatch, WeightRangeDifferential) {
  const KernelTable& scalar = kernels::kernel_table_for(IsaTier::Scalar);
  Rng rng(307);
  for (const IsaTier tier : supported_tiers()) {
    const KernelTable& table = kernels::kernel_table_for(tier);
    // Empty range: min is the +inf identity, count is zero — the contract
    // that lets the candidate build split rows around the diagonal.
    EXPECT_EQ(table.weight_range_min(nullptr, 0), std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(table.weight_range_count_eq(nullptr, 0, 0), 0);
    std::vector<int> widths(std::begin(kAdversarialWidths), std::end(kAdversarialWidths));
    for (int n = 2; n <= 9; ++n) widths.push_back(n);  // sub-vector-width ranges
    for (const int n : widths) {
      std::vector<std::int64_t> w(static_cast<std::size_t>(n));
      for (int trial = 0; trial < 8; ++trial) {
        // Two-valued rows like reduced labeling metrics (heavy ties) in
        // half the trials; wide-spread values in the rest.
        const bool two_valued = trial % 2 == 0;
        for (auto& x : w) {
          x = two_valued ? static_cast<std::int64_t>(2 + 2 * rng.uniform_index(2))
                         : static_cast<std::int64_t>(rng.uniform_index(std::size_t{1} << 30));
        }
        const std::int64_t want_min = scalar.weight_range_min(w.data(), n);
        ASSERT_EQ(table.weight_range_min(w.data(), n), want_min)
            << "tier=" << isa_tier_name(table.tier) << " n=" << n;
        ASSERT_EQ(table.weight_range_count_eq(w.data(), n, want_min),
                  scalar.weight_range_count_eq(w.data(), n, want_min))
            << "tier=" << isa_tier_name(table.tier) << " n=" << n;
        // A needle that may not appear at all.
        ASSERT_EQ(table.weight_range_count_eq(w.data(), n, 3),
                  scalar.weight_range_count_eq(w.data(), n, 3))
            << "tier=" << isa_tier_name(table.tier) << " n=" << n;
      }
    }
  }
}

/// End-to-end: APSP through the public entry point must be identical under
/// every tier (this is what the forced-scalar CI leg checks fleet-wide;
/// here it runs in-process through set_isa_tier).
TEST(KernelDispatch, AllPairsDistancesIdenticalAcrossTiers) {
  Rng rng(401);
  const IsaTier restore = kernels::active_isa_tier();
  for (const int n : {63, 64, 65, 129}) {
    const Graph graph = erdos_renyi(n, 0.15, rng);
    kernels::set_isa_tier(IsaTier::Scalar);
    const DistanceMatrix want = all_pairs_distances(graph, 1);
    for (const IsaTier tier : supported_tiers()) {
      kernels::set_isa_tier(tier);
      const DistanceMatrix got = all_pairs_distances(graph, 1);
      for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
          ASSERT_EQ(got.at(u, v), want.at(u, v))
              << "tier=" << isa_tier_name(tier) << " n=" << n << " u=" << u << " v=" << v;
        }
      }
    }
  }
  kernels::set_isa_tier(restore);
}

}  // namespace
}  // namespace lptsp
