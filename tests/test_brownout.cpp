#include <gtest/gtest.h>

#include "net/brownout.hpp"

namespace lptsp {
namespace {

BrownoutLadder make(std::size_t heuristic, std::size_t reject, double exit_ratio = 0.5) {
  return BrownoutLadder(BrownoutLadder::Config{heuristic, reject, exit_ratio});
}

TEST(BrownoutLadder, DisabledWhenBothThresholdsZero) {
  BrownoutLadder ladder = make(0, 0);
  EXPECT_FALSE(ladder.enabled());
  const auto transition = ladder.update(1'000'000);
  EXPECT_EQ(transition.new_level, 0);
  EXPECT_FALSE(transition.heuristic_changed);
  EXPECT_EQ(ladder.level(), 0);
}

TEST(BrownoutLadder, EngagesAndReleasesWithHysteresis) {
  BrownoutLadder ladder = make(8, 16);
  EXPECT_TRUE(ladder.enabled());

  EXPECT_EQ(ladder.update(7).new_level, 0);
  const auto engage = ladder.update(8);
  EXPECT_EQ(engage.old_level, 0);
  EXPECT_EQ(engage.new_level, 1);
  EXPECT_TRUE(engage.heuristic_changed);
  EXPECT_TRUE(engage.heuristic_engaged);

  // Between exit threshold (4) and enter (8): engaged rung holds, released
  // rung would not engage — that asymmetry is the hysteresis.
  EXPECT_EQ(ladder.update(5).new_level, 1);
  EXPECT_FALSE(ladder.update(5).heuristic_changed);

  const auto release = ladder.update(4);
  EXPECT_EQ(release.new_level, 0);
  EXPECT_TRUE(release.heuristic_changed);
  EXPECT_FALSE(release.heuristic_engaged);
}

// The edge case from the field: a rung-1 threshold of 1 with the default
// exit_ratio truncates its exit threshold to 0. The rung must then hold
// until the queue is completely empty — not release at pending == 1, and
// not get stuck forever.
TEST(BrownoutLadder, ExitThresholdTruncatingToZeroReleasesOnlyOnEmptyQueue) {
  BrownoutLadder ladder = make(1, 0);
  ASSERT_EQ(ladder.exit_threshold(1), 0u);

  EXPECT_EQ(ladder.update(1).new_level, 1);
  // Still one pending: exit threshold is 0, so the rung holds.
  EXPECT_EQ(ladder.update(1).new_level, 1);
  EXPECT_FALSE(ladder.update(1).heuristic_changed);
  // Queue empty: now it releases.
  const auto release = ladder.update(0);
  EXPECT_EQ(release.new_level, 0);
  EXPECT_TRUE(release.heuristic_changed);
}

TEST(BrownoutLadder, ExitRatioZeroMeansReleaseOnlyOnEmptyQueue) {
  BrownoutLadder ladder = make(8, 16, 0.0);
  EXPECT_EQ(ladder.exit_threshold(8), 0u);
  EXPECT_EQ(ladder.update(20).new_level, 2);
  // Far below both enter thresholds, but not empty: both rungs hold.
  EXPECT_EQ(ladder.update(1).new_level, 2);
  EXPECT_EQ(ladder.update(0).new_level, 0);
}

// Rung 2 engages while rung 1 is already holding in its hysteresis band —
// the rungs move independently, and the level must report the highest
// engaged rung throughout.
TEST(BrownoutLadder, RejectEngagesWhileHeuristicMidTransition) {
  BrownoutLadder ladder = make(4, 8);
  // exit thresholds: heuristic 2, reject 4.

  EXPECT_EQ(ladder.update(4).new_level, 1);
  // Drop into rung 1's hysteresis band (held, not released)...
  EXPECT_EQ(ladder.update(3).new_level, 1);
  // ...then spike past rung 2's threshold. One update, level 1 -> 2, and
  // rung 1 reports no change (it was already engaged).
  const auto spike = ladder.update(9);
  EXPECT_EQ(spike.old_level, 1);
  EXPECT_EQ(spike.new_level, 2);
  EXPECT_FALSE(spike.heuristic_changed);
  EXPECT_TRUE(ladder.reject_engaged());
  EXPECT_TRUE(ladder.heuristic_engaged());
}

// Rung 2 releases while rung 1 holds: pending falls to reject's exit
// threshold, which sits inside rung 1's hold band. Level steps 2 -> 1,
// not 2 -> 0.
TEST(BrownoutLadder, RejectReleasesIntoStillEngagedHeuristicRung) {
  BrownoutLadder ladder = make(4, 8);

  EXPECT_EQ(ladder.update(10).new_level, 2);
  const auto step_down = ladder.update(4);  // reject exit (4) but heuristic still holds
  EXPECT_EQ(step_down.old_level, 2);
  EXPECT_EQ(step_down.new_level, 1);
  EXPECT_FALSE(step_down.heuristic_changed);
  EXPECT_FALSE(ladder.reject_engaged());
  EXPECT_TRUE(ladder.heuristic_engaged());

  const auto recover = ladder.update(2);  // heuristic exit
  EXPECT_EQ(recover.new_level, 0);
  EXPECT_TRUE(recover.heuristic_changed);
}

// A burst can cross both enter thresholds between updates; one update must
// engage both rungs, and a collapse to empty must release both.
TEST(BrownoutLadder, BothRungsEngageAndReleaseInOneUpdate) {
  BrownoutLadder ladder = make(4, 8);

  const auto burst = ladder.update(10);
  EXPECT_EQ(burst.old_level, 0);
  EXPECT_EQ(burst.new_level, 2);
  EXPECT_TRUE(burst.heuristic_changed);
  EXPECT_TRUE(burst.heuristic_engaged);

  const auto collapse = ladder.update(0);
  EXPECT_EQ(collapse.old_level, 2);
  EXPECT_EQ(collapse.new_level, 0);
  EXPECT_TRUE(collapse.heuristic_changed);
  EXPECT_FALSE(collapse.heuristic_engaged);
}

// Reject-only configuration (rung 1 disabled): the level jumps 0 <-> 2
// and heuristic_changed never fires.
TEST(BrownoutLadder, RejectOnlyConfigSkipsLevelOne) {
  BrownoutLadder ladder = make(0, 6);
  EXPECT_TRUE(ladder.enabled());

  const auto engage = ladder.update(6);
  EXPECT_EQ(engage.old_level, 0);
  EXPECT_EQ(engage.new_level, 2);
  EXPECT_FALSE(engage.heuristic_changed);
  EXPECT_FALSE(ladder.heuristic_engaged());

  EXPECT_EQ(ladder.update(4).new_level, 2);  // hysteresis band holds
  EXPECT_EQ(ladder.update(3).new_level, 0);  // exit threshold
  EXPECT_FALSE(ladder.update(3).heuristic_changed);
}

}  // namespace
}  // namespace lptsp
