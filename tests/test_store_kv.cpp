#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "store/kv.hpp"
#include "util/fault.hpp"

namespace lptsp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "lptsp_" + name + ".store";
}

KvStore::Options options_for(const std::string& path) {
  KvStore::Options options;
  options.path = path;
  return options;
}

std::unique_ptr<KvStore> must_open(const KvStore::Options& options) {
  std::string error;
  auto store = KvStore::open(options, error);
  EXPECT_NE(store, nullptr) << error;
  return store;
}

TEST(KvStore, PutGetOverwriteEraseSurviveReopen) {
  const std::string path = temp_path("basic");
  std::remove(path.c_str());
  {
    auto store = must_open(options_for(path));
    EXPECT_TRUE(store->put(0, "alpha", "1"));
    EXPECT_TRUE(store->put(0, "beta", "2"));
    EXPECT_TRUE(store->put(0, "alpha", "one"));  // overwrite
    EXPECT_TRUE(store->put(1, "gamma", "3"));
    EXPECT_TRUE(store->erase(0, "beta"));
    EXPECT_TRUE(store->erase(0, "never-existed"));  // no-op, still true
    EXPECT_EQ(store->get(0, "alpha"), "one");
    EXPECT_EQ(store->get(0, "beta"), std::nullopt);
  }
  auto store = must_open(options_for(path));
  EXPECT_EQ(store->get(0, "alpha"), "one");
  EXPECT_EQ(store->get(0, "beta"), std::nullopt);
  EXPECT_EQ(store->get(1, "gamma"), "3");
  EXPECT_EQ(store->size(0), 1u);
  EXPECT_EQ(store->size(1), 1u);
  const KvStore::Stats stats = store->stats();
  EXPECT_EQ(stats.live_records, 2u);
  // 4 puts + 1 tombstone replayed (the no-op erase wrote nothing).
  EXPECT_EQ(stats.total_records, 5u);
  EXPECT_EQ(stats.dropped_records, 0u);
  std::remove(path.c_str());
}

TEST(KvStore, NamespacesAreIndependentKeySpaces) {
  const std::string path = temp_path("namespaces");
  std::remove(path.c_str());
  auto store = must_open(options_for(path));
  EXPECT_TRUE(store->put(0, "key", "results-value"));
  EXPECT_TRUE(store->put(1, "key", "meta-value"));
  EXPECT_EQ(store->get(0, "key"), "results-value");
  EXPECT_EQ(store->get(1, "key"), "meta-value");
  EXPECT_TRUE(store->erase(0, "key"));
  EXPECT_EQ(store->get(0, "key"), std::nullopt);
  EXPECT_EQ(store->get(1, "key"), "meta-value");
  // Out-of-range namespaces are rejected, not UB.
  EXPECT_FALSE(store->put(KvStore::kNamespaces, "key", "x"));
  EXPECT_EQ(store->get(KvStore::kNamespaces, "key"), std::nullopt);
  std::remove(path.c_str());
}

TEST(KvStore, CompactionShrinksTheFileAndPreservesEveryLiveKey) {
  const std::string path = temp_path("compaction");
  std::remove(path.c_str());
  KvStore::Options options = options_for(path);
  options.compact_min_records = 32;
  options.compact_garbage_ratio = 0.5;
  {
    auto store = must_open(options);
    // Churn one hot key far past the garbage threshold while a few cold
    // keys sit alongside it.
    for (int i = 0; i < 8; ++i) {
      store->put(0, "cold-" + std::to_string(i), std::string(64, 'c'));
    }
    for (int i = 0; i < 500; ++i) {
      store->put(0, "hot", "value-" + std::to_string(i));
    }
    const KvStore::Stats stats = store->stats();
    EXPECT_GE(stats.compactions, 1u);
    EXPECT_EQ(stats.live_records, 9u);
    // Post-compaction the log holds (close to) only live records.
    EXPECT_LT(stats.total_records, 80u);
    EXPECT_EQ(store->get(0, "hot"), "value-499");
  }
  auto store = must_open(options);
  EXPECT_EQ(store->size(0), 9u);
  EXPECT_EQ(store->get(0, "hot"), "value-499");
  EXPECT_EQ(store->get(0, "cold-7"), std::string(64, 'c'));
  std::remove(path.c_str());
}

TEST(KvStore, ExplicitCompactAndSyncWork) {
  const std::string path = temp_path("explicit");
  std::remove(path.c_str());
  auto store = must_open(options_for(path));
  for (int i = 0; i < 50; ++i) store->put(0, "k", std::to_string(i));
  const std::uint64_t before = store->stats().file_bytes;
  EXPECT_TRUE(store->compact());
  EXPECT_TRUE(store->sync());
  const KvStore::Stats stats = store->stats();
  EXPECT_LT(stats.file_bytes, before);
  EXPECT_EQ(stats.total_records, 1u);
  EXPECT_EQ(store->get(0, "k"), "49");
  std::remove(path.c_str());
}

/// Returns true when `path` exists on disk.
bool file_exists(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

/// Compaction "crashes" inside the rename window: the fully written
/// .compact sibling is left on disk (as a killed process would leave it)
/// and the old log stays live. Nothing is lost, the orphan is reclaimed on
/// reopen, and a later compaction succeeds.
TEST(KvStore, CompactionCrashInRenameWindowLosesNothing) {
  const std::string path = temp_path("compact_crash");
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
  fault::disarm_all();
  {
    auto store = must_open(options_for(path));
    for (int i = 0; i < 40; ++i) store->put(0, "k" + std::to_string(i % 4), std::to_string(i));

    fault::arm(FaultSite::StoreCompactRename, 1.0, 7, /*max_fires=*/1);
    EXPECT_FALSE(store->compact());
    fault::disarm_all();
    // The sibling survives the simulated crash; the live state is intact
    // through the in-memory index AND through the still-valid old log.
    EXPECT_TRUE(file_exists(path + ".compact"));
    EXPECT_EQ(store->get(0, "k3"), "39");
    EXPECT_EQ(store->size(0), 4u);
    EXPECT_EQ(store->stats().compactions, 0u);
    // The store keeps accepting writes after the failed compaction.
    EXPECT_TRUE(store->put(0, "post-crash", "alive"));
  }
  // Reopen: pre-compaction state is fully served, no record lost, and the
  // leftover sibling is reclaimed.
  auto store = must_open(options_for(path));
  EXPECT_FALSE(file_exists(path + ".compact"));
  EXPECT_EQ(store->size(0), 5u);
  EXPECT_EQ(store->get(0, "k0"), "36");
  EXPECT_EQ(store->get(0, "k3"), "39");
  EXPECT_EQ(store->get(0, "post-crash"), "alive");
  // With the fault gone, compaction completes and still loses nothing.
  EXPECT_TRUE(store->compact());
  EXPECT_EQ(store->size(0), 5u);
  EXPECT_EQ(store->get(0, "post-crash"), "alive");
  EXPECT_EQ(store->stats().compactions, 1u);
  std::remove(path.c_str());
}

/// Compaction interrupted by an injected fsync failure on the fresh log:
/// the abandon path removes the sibling, the old log stays authoritative,
/// and reopen serves the pre-compaction state.
TEST(KvStore, CompactionFsyncFailureAbandonsCleanly) {
  const std::string path = temp_path("compact_fsync");
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
  fault::disarm_all();
  {
    auto store = must_open(options_for(path));
    for (int i = 0; i < 30; ++i) store->put(0, "key", std::to_string(i));

    fault::arm(FaultSite::StoreFsync, 1.0, 11, /*max_fires=*/1);
    EXPECT_FALSE(store->compact());
    fault::disarm_all();
    // Abandoned, not crashed: no orphan left beside the log.
    EXPECT_FALSE(file_exists(path + ".compact"));
    EXPECT_EQ(store->get(0, "key"), "29");
  }
  auto store = must_open(options_for(path));
  EXPECT_EQ(store->get(0, "key"), "29");
  EXPECT_EQ(store->size(0), 1u);
  EXPECT_TRUE(store->compact());
  EXPECT_EQ(store->get(0, "key"), "29");
  std::remove(path.c_str());
}

TEST(KvStore, SyncEveryPutRoundTrips) {
  const std::string path = temp_path("synced");
  std::remove(path.c_str());
  KvStore::Options options = options_for(path);
  options.sync_every_put = true;
  {
    auto store = must_open(options);
    EXPECT_TRUE(store->put(0, "durable", "yes"));
  }
  auto store = must_open(options);
  EXPECT_EQ(store->get(0, "durable"), "yes");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lptsp
