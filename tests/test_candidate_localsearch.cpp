#include <gtest/gtest.h>

#include <algorithm>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/candidates.hpp"
#include "tsp/chained_lk.hpp"
#include "tsp/construct.hpp"
#include "tsp/local_search.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance random_instance(int n, Rng& rng, int lo = 1, int hi = 9) {
  MetricInstance instance(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) instance.set_weight(i, j, rng.uniform_int(lo, hi));
  }
  return instance;
}

TEST(CandidateLists, SortedDistinctAndComplete) {
  Rng rng(5);
  const MetricInstance instance = random_instance(20, rng);
  const CandidateLists lists(instance, 7);
  EXPECT_EQ(lists.n(), 20);
  EXPECT_EQ(lists.k(), 7);
  EXPECT_FALSE(lists.complete());
  for (int v = 0; v < 20; ++v) {
    const int* cand = lists.of(v);
    for (int i = 0; i < lists.k(); ++i) {
      EXPECT_NE(cand[i], v);
      EXPECT_GE(cand[i], 0);
      EXPECT_LT(cand[i], 20);
      if (i > 0) {
        EXPECT_LE(instance.weight(v, cand[i - 1]), instance.weight(v, cand[i]));
        EXPECT_NE(cand[i - 1], cand[i]);
      }
    }
    // Nothing outside the list is cheaper than the list's most expensive
    // entry (k-nearest property).
    const Weight worst = instance.weight(v, cand[lists.k() - 1]);
    std::vector<bool> listed(20, false);
    for (int i = 0; i < lists.k(); ++i) listed[static_cast<std::size_t>(cand[i])] = true;
    for (int u = 0; u < 20; ++u) {
      if (u == v || listed[static_cast<std::size_t>(u)]) continue;
      EXPECT_GE(instance.weight(v, u), worst);
    }
  }
  const CandidateLists wide(instance, 100);
  EXPECT_EQ(wide.k(), 19);
  EXPECT_TRUE(wide.complete());
}

class CandidateSearchProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 131 + 17)};
};

TEST_P(CandidateSearchProperty, NeverWorsensRandomSeeds) {
  for (const int n : {6, 14, 30}) {
    const MetricInstance instance = random_instance(n, rng_);
    Order order = rng_.permutation(n);
    const Weight before = path_length(instance, order);
    PathOptimizer optimizer(instance);
    optimizer.optimize(order);
    EXPECT_TRUE(is_valid_order(order, n));
    EXPECT_LE(path_length(instance, order), before);
  }
}

TEST_P(CandidateSearchProperty, NeverWorsensOnReducedInstances) {
  const Graph graph = random_with_diameter_at_most(24, 2, 0.2, rng_);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  Order order = rng_.permutation(24);
  const Weight before = path_length(reduced.instance, order);
  PathOptimizer optimizer(reduced.instance);
  optimizer.optimize(order);
  EXPECT_TRUE(is_valid_order(order, 24));
  EXPECT_LE(path_length(reduced.instance, order), before);
}

TEST_P(CandidateSearchProperty, NeverBeatsExact) {
  const MetricInstance instance = random_instance(8, rng_);
  const Weight optimal = brute_force_path(instance).cost;
  Order order = rng_.permutation(8);
  PathOptimizer optimizer(instance);
  optimizer.optimize(order);
  EXPECT_GE(path_length(instance, order), optimal);
}

TEST_P(CandidateSearchProperty, CompleteListsReachTwoOptLocalOptimum) {
  // With k = n-1 the candidate scan is exhaustive: any improving 2-opt
  // move creates an edge (x, c) cheaper than an edge removed at x, so a
  // fixpoint of the optimizer must leave the full-matrix pass nothing.
  const int n = 13;
  const MetricInstance instance = random_instance(n, rng_);
  Order order = rng_.permutation(n);
  PathOptimizer optimizer(instance, n - 1);
  optimizer.optimize(order);
  EXPECT_FALSE(two_opt_pass(instance, order));
}

TEST_P(CandidateSearchProperty, TargetedWakeAfterKickNeverWorsens) {
  const int n = 20;
  const MetricInstance instance = random_instance(n, rng_);
  Order order = rng_.permutation(n);
  PathOptimizer optimizer(instance);
  optimizer.optimize(order);
  std::vector<int> wake;
  for (int kick = 0; kick < 10; ++kick) {
    Order perturbed = double_bridge_kick(order, rng_, &wake);
    EXPECT_LE(wake.size(), 6u);
    const Weight kicked_cost = path_length(instance, perturbed);
    optimizer.optimize(perturbed, wake);
    EXPECT_TRUE(is_valid_order(perturbed, n));
    EXPECT_LE(path_length(instance, perturbed), kicked_cost);
    order = std::move(perturbed);
  }
}

TEST_P(CandidateSearchProperty, SharedListsMatchOwnedLists) {
  const int n = 16;
  const MetricInstance instance = random_instance(n, rng_);
  const CandidateLists shared(instance);
  Order owned_order = rng_.permutation(n);
  Order shared_order = owned_order;
  PathOptimizer owned(instance);
  PathOptimizer borrowing(instance, shared);
  owned.optimize(owned_order);
  borrowing.optimize(shared_order);
  EXPECT_EQ(owned_order, shared_order);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CandidateSearchProperty, ::testing::Range(0, 10));

TEST(CandidateSearch, TinyInstances) {
  Rng rng(3);
  for (const int n : {1, 2, 3}) {
    const MetricInstance instance = random_instance(n, rng);
    Order order = rng.permutation(n);
    const Weight before = path_length(instance, order);
    PathOptimizer optimizer(instance);
    optimizer.optimize(order);
    EXPECT_TRUE(is_valid_order(order, n));
    EXPECT_LE(path_length(instance, order), before);
  }
}

TEST(CandidateSearch, MismatchedListsRejected) {
  Rng rng(9);
  const MetricInstance small = random_instance(6, rng);
  const MetricInstance large = random_instance(9, rng);
  const CandidateLists lists(small);
  EXPECT_THROW(PathOptimizer(large, lists), precondition_error);
}

TEST(LegacyOrOpt, StillNeverWorsensAndTerminates) {
  // The allocation-free rewrite must keep the legacy semantics the
  // ablation benches rely on.
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const MetricInstance instance = random_instance(15, rng);
    Order order = rng.permutation(15);
    const Weight before = path_length(instance, order);
    or_opt(instance, order);
    EXPECT_TRUE(is_valid_order(order, 15));
    EXPECT_LE(path_length(instance, order), before);
    EXPECT_FALSE(or_opt_pass(instance, order));  // fixpoint reached
  }
}

}  // namespace
}  // namespace lptsp
