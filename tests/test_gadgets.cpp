#include <gtest/gtest.h>

#include "core/reduction.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "ham/gadgets.hpp"
#include "ham/hamiltonian.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(HcToHpGadget, StructureIsAsSpecified) {
  const Graph graph = cycle_graph(5);
  const HcToHpGadget gadget = hc_to_hp_gadget(graph, 0);
  EXPECT_EQ(gadget.graph.n(), 8);
  // Twin copies the pivot's neighborhood.
  EXPECT_TRUE(gadget.graph.has_edge(gadget.twin, 1));
  EXPECT_TRUE(gadget.graph.has_edge(gadget.twin, 4));
  EXPECT_FALSE(gadget.graph.has_edge(gadget.twin, 0));  // false twin
  // Pendants have degree 1.
  EXPECT_EQ(gadget.graph.degree(gadget.pendant), 1);
  EXPECT_EQ(gadget.graph.degree(gadget.pendant2), 1);
}

class GadgetEquivalence : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 251 + 1)};
};

TEST_P(GadgetEquivalence, Theorem1HamCycleIffGadgetHamPath) {
  const Graph graph = erdos_renyi(9, 0.25 + 0.05 * (GetParam() % 6), rng_);
  const HcToHpGadget gadget = hc_to_hp_gadget(graph, rng_.uniform_int(0, 8));
  EXPECT_EQ(has_hamiltonian_cycle(graph), has_hamiltonian_path(gadget.graph));
}

TEST_P(GadgetEquivalence, Theorem3SpanSeparatesHamPath) {
  // Griggs–Yeh: lambda_{2,1}(gadget(G)) = n+1 iff G has a Hamiltonian
  // path, and >= n+2 otherwise.
  const int n = 8;
  const Graph graph = erdos_renyi(n, 0.35 + 0.05 * (GetParam() % 5), rng_);
  const Graph gadget = griggs_yeh_gadget(graph);
  EXPECT_LE(diameter(gadget), 2);

  SolveOptions options;
  options.engine = Engine::HeldKarp;
  const SolveResult result = solve_labeling(gadget, PVec::L21(), options);
  if (has_hamiltonian_path(graph)) {
    EXPECT_EQ(result.span, n + 1);
  } else {
    EXPECT_GE(result.span, n + 2);
  }
}

TEST_P(GadgetEquivalence, Theorem3LowerBoundAlwaysHolds) {
  const int n = 7;
  const Graph graph = erdos_renyi(n, 0.3, rng_);
  const Graph gadget = griggs_yeh_gadget(graph);
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  // The universal vertex forces at least one heavy (weight-2) step.
  EXPECT_GE(solve_labeling(gadget, PVec::L21(), options).span, n + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GadgetEquivalence, ::testing::Range(0, 10));

TEST(GriggsYeh, PathInstanceGivesExactThreshold) {
  // A path graph certainly has a Hamiltonian path.
  const Graph graph = path_graph(6);
  const Graph gadget = griggs_yeh_gadget(graph);
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  EXPECT_EQ(solve_labeling(gadget, PVec::L21(), options).span, 7);
}

TEST(GriggsYeh, StarInstanceExceedsThreshold) {
  // Stars K_{1,m} with m >= 3 have no Hamiltonian path.
  const Graph graph = star_graph(6);
  const Graph gadget = griggs_yeh_gadget(graph);
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  EXPECT_GE(solve_labeling(gadget, PVec::L21(), options).span, 8);
}

}  // namespace
}  // namespace lptsp
