#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "graph/generators.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/lower_bounds.hpp"
#include "tsp/matching.hpp"
#include "tsp/mst.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance random_instance(int n, Rng& rng, int lo = 1, int hi = 9) {
  MetricInstance instance(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) instance.set_weight(i, j, rng.uniform_int(lo, hi));
  }
  return instance;
}

/// Reference: exhaustive minimum spanning tree weight via edge subsets
/// (Prüfer-free; n is tiny so try all parent arrays is easier via brute
/// force over permutations of Prim — instead we check against a simple
/// Kruskal implementation).
Weight kruskal_weight(const MetricInstance& instance) {
  struct Edge {
    Weight w;
    int u, v;
  };
  std::vector<Edge> edges;
  for (int u = 0; u < instance.n(); ++u) {
    for (int v = u + 1; v < instance.n(); ++v) edges.push_back({instance.weight(u, v), u, v});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) { return a.w < b.w; });
  std::vector<int> root(static_cast<std::size_t>(instance.n()));
  for (int v = 0; v < instance.n(); ++v) root[static_cast<std::size_t>(v)] = v;
  const auto find = [&](int v) {
    while (root[static_cast<std::size_t>(v)] != v) v = root[static_cast<std::size_t>(v)] = root[static_cast<std::size_t>(root[static_cast<std::size_t>(v)])];
    return v;
  };
  Weight total = 0;
  for (const auto& edge : edges) {
    const int ru = find(edge.u);
    const int rv = find(edge.v);
    if (ru != rv) {
      root[static_cast<std::size_t>(ru)] = rv;
      total += edge.w;
    }
  }
  return total;
}

/// Reference: brute-force min-weight perfect matching by recursion.
Weight brute_force_min_matching(const MetricInstance& instance, std::vector<int> vertices) {
  if (vertices.empty()) return 0;
  const int first = vertices[0];
  Weight best = std::numeric_limits<Weight>::max();
  for (std::size_t i = 1; i < vertices.size(); ++i) {
    std::vector<int> rest;
    for (std::size_t j = 1; j < vertices.size(); ++j) {
      if (j != i) rest.push_back(vertices[j]);
    }
    best = std::min(best, instance.weight(first, vertices[i]) +
                              brute_force_min_matching(instance, std::move(rest)));
  }
  return best;
}

/// Reference: brute-force maximum matching size via edge subsets.
int brute_force_max_matching(const Graph& graph) {
  const auto edges = graph.edges();
  int best = 0;
  const int m = static_cast<int>(edges.size());
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    std::vector<bool> used(static_cast<std::size_t>(graph.n()), false);
    int size = 0;
    bool valid = true;
    for (int e = 0; e < m && valid; ++e) {
      if (!((mask >> e) & 1)) continue;
      const auto& [u, v] = edges[static_cast<std::size_t>(e)];
      if (used[static_cast<std::size_t>(u)] || used[static_cast<std::size_t>(v)]) {
        valid = false;
      } else {
        used[static_cast<std::size_t>(u)] = used[static_cast<std::size_t>(v)] = true;
        ++size;
      }
    }
    if (valid) best = std::max(best, size);
  }
  return best;
}

TEST(Mst, SingleVertex) {
  const SpanningTree tree = prim_mst(MetricInstance(1));
  EXPECT_EQ(tree.total_weight, 0);
  EXPECT_EQ(tree.parent[0], -1);
}

TEST(Mst, KnownTriangle) {
  MetricInstance instance(3);
  instance.set_weight(0, 1, 1);
  instance.set_weight(1, 2, 2);
  instance.set_weight(0, 2, 3);
  EXPECT_EQ(prim_mst(instance).total_weight, 3);
}

TEST(Mst, OddDegreeCountIsEven) {
  Rng rng(5);
  for (int n : {2, 5, 9, 14}) {
    const MetricInstance instance = random_instance(n, rng);
    EXPECT_EQ(prim_mst(instance).odd_degree_vertices().size() % 2, 0u);
  }
}

class MstProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 733 + 11)};
};

TEST_P(MstProperty, PrimMatchesKruskal) {
  for (int n : {2, 4, 7, 11}) {
    const MetricInstance instance = random_instance(n, rng_);
    EXPECT_EQ(prim_mst(instance).total_weight, kruskal_weight(instance)) << "n = " << n;
  }
}

TEST_P(MstProperty, MstLowerBoundsOptimalPath) {
  const MetricInstance instance = random_instance(8, rng_);
  EXPECT_LE(mst_lower_bound(instance), brute_force_path(instance).cost);
  EXPECT_LE(trivial_lower_bound(instance), brute_force_path(instance).cost);
  EXPECT_LE(path_lower_bound(instance), brute_force_path(instance).cost);
}

TEST_P(MstProperty, AscentBoundValidAndDominatesMst) {
  const MetricInstance instance = random_instance(9, rng_);
  const Weight ascent = held_karp_ascent_lower_bound(instance);
  EXPECT_LE(ascent, brute_force_path(instance).cost);
  EXPECT_GE(ascent, path_lower_bound(instance));
}

TEST(AscentBound, StrictlyBeatsMstOnStarMetrics) {
  // Star metric: one hub at distance 1 from everyone, periphery pairs at
  // distance 2. The MST is the star (weight n-1) but any Hamiltonian path
  // must use >= n-3 weight-2 edges; the ascent closes most of that gap.
  const int n = 9;
  MetricInstance instance(n);
  for (int i = 1; i < n; ++i) instance.set_weight(0, i, 1);
  for (int i = 1; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) instance.set_weight(i, j, 2);
  }
  const Weight mst = path_lower_bound(instance);
  const Weight ascent = held_karp_ascent_lower_bound(instance, 200);
  const Weight optimal = brute_force_path(instance).cost;
  EXPECT_GT(ascent, mst);
  EXPECT_LE(ascent, optimal);
}

TEST(AscentBound, RejectsZeroIterations) {
  EXPECT_THROW(held_karp_ascent_lower_bound(MetricInstance(4), 0), precondition_error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstProperty, ::testing::Range(0, 8));

TEST(Blossom, PerfectOnCompleteEvenGraph) {
  const auto match = max_cardinality_matching(complete_graph(8));
  for (int v = 0; v < 8; ++v) {
    ASSERT_NE(match[static_cast<std::size_t>(v)], -1);
    EXPECT_EQ(match[static_cast<std::size_t>(match[static_cast<std::size_t>(v)])], v);
  }
}

TEST(Blossom, KnownMatchingNumbers) {
  const auto count_matched = [](const std::vector<int>& match) {
    int matched = 0;
    for (const int partner : match) {
      if (partner != -1) ++matched;
    }
    return matched / 2;
  };
  EXPECT_EQ(count_matched(max_cardinality_matching(petersen_graph())), 5);
  EXPECT_EQ(count_matched(max_cardinality_matching(path_graph(7))), 3);
  EXPECT_EQ(count_matched(max_cardinality_matching(cycle_graph(9))), 4);
  EXPECT_EQ(count_matched(max_cardinality_matching(star_graph(6))), 1);
  EXPECT_EQ(count_matched(max_cardinality_matching(Graph(5))), 0);
}

class BlossomProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 389 + 3)};
};

TEST_P(BlossomProperty, MatchesBruteForceSize) {
  const Graph graph = erdos_renyi(9, 0.25 + 0.05 * (GetParam() % 5), rng_);
  const auto match = max_cardinality_matching(graph);
  int matched = 0;
  for (int v = 0; v < graph.n(); ++v) {
    if (match[static_cast<std::size_t>(v)] != -1) {
      EXPECT_EQ(match[static_cast<std::size_t>(match[static_cast<std::size_t>(v)])], v);
      EXPECT_TRUE(graph.has_edge(v, match[static_cast<std::size_t>(v)]));
      ++matched;
    }
  }
  EXPECT_EQ(matched / 2, brute_force_max_matching(graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlossomProperty, ::testing::Range(0, 12));

TEST(MatchingDp, EmptyAndPair) {
  const MetricInstance instance = MetricInstance(2);
  EXPECT_EQ(min_weight_perfect_matching_dp(instance, {}).weight, 0);
  MetricInstance pair(2);
  pair.set_weight(0, 1, 4);
  const auto result = min_weight_perfect_matching_dp(pair, {0, 1});
  EXPECT_EQ(result.weight, 4);
  ASSERT_EQ(result.pairs.size(), 1u);
}

TEST(MatchingDp, RejectsOddCount) {
  EXPECT_THROW(min_weight_perfect_matching_dp(MetricInstance(3), {0, 1, 2}), precondition_error);
}

class MatchingProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 211 + 17)};
};

TEST_P(MatchingProperty, DpMatchesBruteForce) {
  for (int k : {2, 4, 6, 8}) {
    const MetricInstance instance = random_instance(k, rng_);
    std::vector<int> vertices;
    for (int v = 0; v < k; ++v) vertices.push_back(v);
    const auto dp = min_weight_perfect_matching_dp(instance, vertices);
    EXPECT_EQ(dp.weight, brute_force_min_matching(instance, vertices)) << "k = " << k;
    EXPECT_TRUE(dp.certified_optimal);
    // Pairs must cover each vertex exactly once and sum to the weight.
    std::vector<bool> seen(static_cast<std::size_t>(k), false);
    Weight total = 0;
    for (const auto& [a, b] : dp.pairs) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(a)]);
      EXPECT_FALSE(seen[static_cast<std::size_t>(b)]);
      seen[static_cast<std::size_t>(a)] = seen[static_cast<std::size_t>(b)] = true;
      total += instance.weight(a, b);
    }
    EXPECT_EQ(total, dp.weight);
  }
}

TEST_P(MatchingProperty, TwoValuedMatchesDp) {
  const int k = 10;
  MetricInstance instance(k);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) instance.set_weight(i, j, rng_.bernoulli(0.5) ? 1 : 2);
  }
  std::vector<int> vertices;
  for (int v = 0; v < k; ++v) vertices.push_back(v);
  const auto two_valued = min_weight_perfect_matching_two_valued(instance, vertices);
  const auto dp = min_weight_perfect_matching_dp(instance, vertices);
  EXPECT_EQ(two_valued.weight, dp.weight);
  EXPECT_TRUE(two_valued.certified_optimal);
}

TEST_P(MatchingProperty, GreedyNeverBeatsExact) {
  const int k = 10;
  const MetricInstance instance = random_instance(k, rng_);
  std::vector<int> vertices;
  for (int v = 0; v < k; ++v) vertices.push_back(v);
  const auto greedy = greedy_perfect_matching(instance, vertices);
  const auto dp = min_weight_perfect_matching_dp(instance, vertices);
  EXPECT_GE(greedy.weight, dp.weight);
}

TEST_P(MatchingProperty, DispatcherPicksCertifiedEngines) {
  // Two-valued: certified even at large k.
  MetricInstance two_valued(30);
  for (int i = 0; i < 30; ++i) {
    for (int j = i + 1; j < 30; ++j) two_valued.set_weight(i, j, rng_.bernoulli(0.5) ? 3 : 6);
  }
  std::vector<int> all30;
  for (int v = 0; v < 30; ++v) all30.push_back(v);
  EXPECT_TRUE(min_weight_perfect_matching(two_valued, all30).certified_optimal);

  // Small many-valued: DP, certified.
  const MetricInstance small = random_instance(8, rng_);
  std::vector<int> all8;
  for (int v = 0; v < 8; ++v) all8.push_back(v);
  EXPECT_TRUE(min_weight_perfect_matching(small, all8).certified_optimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace lptsp
