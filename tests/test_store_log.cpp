#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "store/log.hpp"

namespace lptsp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "lptsp_" + name + ".log";
}

std::vector<std::uint8_t> bytes(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

/// Open and collect every record as a string.
std::vector<std::string> scan(const std::string& path, RecordLog::OpenStats& stats) {
  std::vector<std::string> records;
  std::string error;
  RecordLog::Options options;
  options.path = path;
  auto log = RecordLog::open(
      options,
      [&records](const std::uint8_t* payload, std::size_t size) {
        records.emplace_back(reinterpret_cast<const char*>(payload), size);
      },
      stats, error);
  EXPECT_NE(log, nullptr) << error;
  return records;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<char>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

constexpr std::size_t kHeaderSize = 16;
constexpr std::size_t kFrameSize = 8;

TEST(RecordLog, AppendThenScanRoundTrips) {
  const std::string path = temp_path("roundtrip");
  std::remove(path.c_str());
  {
    RecordLog::OpenStats stats;
    std::string error;
    RecordLog::Options options;
    options.path = path;
    auto log = RecordLog::open(options, [](const std::uint8_t*, std::size_t) { FAIL(); },
                               stats, error);
    ASSERT_NE(log, nullptr) << error;
    EXPECT_TRUE(stats.created);
    EXPECT_TRUE(log->append(bytes("alpha")));
    EXPECT_TRUE(log->append(bytes("")));  // empty payloads are legal records
    EXPECT_TRUE(log->append(bytes("gamma-gamma")));
    EXPECT_TRUE(log->sync());
  }
  RecordLog::OpenStats stats;
  const std::vector<std::string> records = scan(path, stats);
  EXPECT_FALSE(stats.created);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.dropped_records, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "alpha");
  EXPECT_EQ(records[1], "");
  EXPECT_EQ(records[2], "gamma-gamma");
  std::remove(path.c_str());
}

TEST(RecordLog, ReopenAppendsAfterExistingRecords) {
  const std::string path = temp_path("reopen");
  std::remove(path.c_str());
  for (int round = 0; round < 3; ++round) {
    RecordLog::OpenStats stats;
    std::string error;
    RecordLog::Options options;
    options.path = path;
    auto log = RecordLog::open(options, [](const std::uint8_t*, std::size_t) {}, stats, error);
    ASSERT_NE(log, nullptr) << error;
    EXPECT_EQ(stats.records, static_cast<std::uint64_t>(round));
    EXPECT_TRUE(log->append(bytes("round-" + std::to_string(round))));
  }
  RecordLog::OpenStats stats;
  const std::vector<std::string> records = scan(path, stats);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2], "round-2");
  std::remove(path.c_str());
}

TEST(RecordLog, TornTailIsTruncatedAndLogStaysAppendable) {
  const std::string path = temp_path("torn");
  std::remove(path.c_str());
  {
    RecordLog::OpenStats stats;
    std::string error;
    RecordLog::Options options;
    options.path = path;
    auto log = RecordLog::open(options, [](const std::uint8_t*, std::size_t) {}, stats, error);
    ASSERT_NE(log, nullptr);
    log->append(bytes("one"));
    log->append(bytes("two"));
  }
  // Simulate a crash mid-append: 5 bytes of a frame that never completed.
  std::vector<char> file = read_file(path);
  const std::size_t intact = file.size();
  file.insert(file.end(), {'\x09', '\x00', '\x00', '\x00', '\x7f'});
  write_file(path, file);

  RecordLog::OpenStats stats;
  const std::vector<std::string> records = scan(path, stats);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(stats.truncated_bytes, 5u);
  EXPECT_EQ(read_file(path).size(), intact);  // tail physically removed

  // The repaired log accepts appends and they survive another reopen.
  {
    RecordLog::OpenStats reopen_stats;
    std::string error;
    RecordLog::Options options;
    options.path = path;
    auto log = RecordLog::open(options, [](const std::uint8_t*, std::size_t) {}, reopen_stats,
                               error);
    ASSERT_NE(log, nullptr);
    EXPECT_TRUE(log->append(bytes("three")));
  }
  RecordLog::OpenStats final_stats;
  const std::vector<std::string> final_records = scan(path, final_stats);
  ASSERT_EQ(final_records.size(), 3u);
  EXPECT_EQ(final_records[2], "three");
  std::remove(path.c_str());
}

TEST(RecordLog, TruncatedMidPayloadDropsOnlyTheTail) {
  const std::string path = temp_path("midpayload");
  std::remove(path.c_str());
  {
    RecordLog::OpenStats stats;
    std::string error;
    RecordLog::Options options;
    options.path = path;
    auto log = RecordLog::open(options, [](const std::uint8_t*, std::size_t) {}, stats, error);
    ASSERT_NE(log, nullptr);
    log->append(bytes("first-record"));
    log->append(bytes("second-record"));
  }
  std::vector<char> file = read_file(path);
  file.resize(file.size() - 4);  // lose the last 4 payload bytes
  write_file(path, file);

  RecordLog::OpenStats stats;
  const std::vector<std::string> records = scan(path, stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "first-record");
  EXPECT_GT(stats.truncated_bytes, 0u);
  std::remove(path.c_str());
}

TEST(RecordLog, BitFlippedRecordIsSkippedButLaterRecordsSurvive) {
  const std::string path = temp_path("bitflip");
  std::remove(path.c_str());
  {
    RecordLog::OpenStats stats;
    std::string error;
    RecordLog::Options options;
    options.path = path;
    auto log = RecordLog::open(options, [](const std::uint8_t*, std::size_t) {}, stats, error);
    ASSERT_NE(log, nullptr);
    log->append(bytes("aaaaaaaa"));
    log->append(bytes("bbbbbbbb"));
    log->append(bytes("cccccccc"));
  }
  // Flip one payload byte of the SECOND record. Layout after the header:
  // [frame|8 bytes payload] x 3.
  std::vector<char> file = read_file(path);
  const std::size_t record_bytes = kFrameSize + 8;
  file[kHeaderSize + record_bytes + kFrameSize + 3] ^= 0x40;
  write_file(path, file);

  RecordLog::OpenStats stats;
  const std::vector<std::string> records = scan(path, stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "aaaaaaaa");
  EXPECT_EQ(records[1], "cccccccc");  // only the damaged record is lost
  EXPECT_EQ(stats.dropped_records, 1u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  std::remove(path.c_str());
}

TEST(RecordLog, ImplausibleLengthFieldTruncatesTheRest) {
  const std::string path = temp_path("badlen");
  std::remove(path.c_str());
  {
    RecordLog::OpenStats stats;
    std::string error;
    RecordLog::Options options;
    options.path = path;
    auto log = RecordLog::open(options, [](const std::uint8_t*, std::size_t) {}, stats, error);
    ASSERT_NE(log, nullptr);
    log->append(bytes("keepme"));
    log->append(bytes("corrupt-my-length"));
    log->append(bytes("unreachable"));
  }
  std::vector<char> file = read_file(path);
  const std::size_t second_frame = kHeaderSize + kFrameSize + 6;
  file[second_frame + 3] = '\x7f';  // length becomes ~2GB: cannot resync past it
  write_file(path, file);

  RecordLog::OpenStats stats;
  const std::vector<std::string> records = scan(path, stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "keepme");
  EXPECT_GT(stats.truncated_bytes, 0u);
  std::remove(path.c_str());
}

TEST(RecordLog, ForeignFileFailsOpenInsteadOfBeingTruncated) {
  const std::string path = temp_path("foreign");
  write_file(path, {'n', 'o', 't', ' ', 'a', ' ', 'l', 'o', 'g', ' ', 'f', 'i', 'l', 'e', '!',
                    '!', '!', '!'});
  RecordLog::OpenStats stats;
  std::string error;
  RecordLog::Options options;
  options.path = path;
  auto log = RecordLog::open(options, [](const std::uint8_t*, std::size_t) {}, stats, error);
  EXPECT_EQ(log, nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(read_file(path).size(), 18u);  // the foreign file was not touched
  std::remove(path.c_str());
}

TEST(RecordLog, OversizedAppendIsRefusedWithoutPoisoningTheLog) {
  const std::string path = temp_path("oversize");
  std::remove(path.c_str());
  RecordLog::OpenStats stats;
  std::string error;
  RecordLog::Options options;
  options.path = path;
  options.max_record_bytes = 16;
  auto log = RecordLog::open(options, [](const std::uint8_t*, std::size_t) {}, stats, error);
  ASSERT_NE(log, nullptr);
  EXPECT_TRUE(log->append(bytes("fits")));
  // The oversized payload is refused, but nothing was written — the log
  // stays healthy and later records keep persisting (one huge record must
  // not silently kill durability for the rest of the process).
  EXPECT_FALSE(log->append(bytes("this payload is larger than sixteen bytes")));
  EXPECT_FALSE(log->failed());
  EXPECT_TRUE(log->append(bytes("tiny")));
  RecordLog::OpenStats reopen_stats;
  log.reset();
  const std::vector<std::string> records = scan(path, reopen_stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "fits");
  EXPECT_EQ(records[1], "tiny");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lptsp
