#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "obs/trace.hpp"
#include "service/batch_solver.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

using obs::Span;
using obs::SpanScope;
using obs::Stage;
using obs::Trace;
using obs::TraceRing;

// ------------------------------------------------------------- span scope

TEST(SpanScope, MeasuresAndAppendsRelativeToOrigin) {
  Trace trace;
  trace.origin_ns = obs::steady_now_ns();
  {
    const SpanScope span(&trace, Stage::Canonicalize);
    std::this_thread::sleep_for(std::chrono::milliseconds{2});
  }
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_EQ(trace.spans[0].stage, Stage::Canonicalize);
  EXPECT_GE(trace.spans[0].duration_ns, 1'000'000u);  // slept >= 2ms, allow slop
  EXPECT_LT(trace.spans[0].start_ns, 1'000'000'000u);  // relative, not absolute

  // finish() is idempotent: early close + destructor = one span.
  {
    SpanScope span(&trace, Stage::Verify);
    span.finish();
    span.finish();
  }
  EXPECT_EQ(trace.spans.size(), 2u);
}

TEST(SpanScope, NullTraceIsInert) {
  const SpanScope span(nullptr, Stage::EngineRace, "held-karp");
  // Nothing to assert beyond "does not crash": the null scope is the
  // metrics-off fast path and must be safe to construct and destroy.
}

// -------------------------------------------------------------- the ring

Trace trace_taking(std::uint64_t id, std::uint64_t total_ns) {
  Trace trace;
  trace.request_id = id;
  trace.total_ns = total_ns;
  trace.result = "solved";
  return trace;
}

TEST(TraceRing, ThresholdFiltersAndCapacityEvictsOldest) {
  TraceRing ring(TraceRing::Config{3, 1000});
  ring.keep(trace_taking(1, 999));  // below threshold: dropped
  EXPECT_EQ(ring.size(), 0u);
  for (std::uint64_t id = 2; id <= 6; ++id) {
    ring.keep(trace_taking(id, 1000 + id));
  }
  EXPECT_EQ(ring.size(), 3u);  // capacity bound
  const std::vector<Trace> kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept.front().request_id, 4u);  // oldest two evicted
  EXPECT_EQ(kept.back().request_id, 6u);
}

TEST(TraceRing, ZeroCapacityDisablesRetention) {
  TraceRing ring(TraceRing::Config{0, 0});
  ring.keep(trace_taking(1, 5000));
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dump_json(), "[]");
}

TEST(TraceRing, DumpJsonIsWellFormed) {
  TraceRing ring(TraceRing::Config{4, 0});
  Trace trace = trace_taking(7, 12345);
  trace.spans.push_back({Stage::CacheLookup, nullptr, 10, 20, false, false});
  trace.spans.push_back({Stage::EngineAttempt, "branch-bound", 40, 99, true, true});
  ring.keep(std::move(trace));

  const std::string json = ring.dump_json();
  EXPECT_NE(json.find("\"id\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_ns\":12345"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage\":\"cache-lookup\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"detail\":\"branch-bound\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"winner\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nested\":true"), std::string::npos) << json;
  // Crude but effective shape check: brackets balance.
  EXPECT_EQ(std::count(json.begin(), json.end(), '['), std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
}

TEST(TraceRing, SampledTracesBypassTheSlowThreshold) {
  TraceRing ring(TraceRing::Config{4, 1000});
  Trace fast = trace_taking(1, 10);  // far below the threshold
  fast.sampled = true;
  fast.trace_id = 0xabcdef12u;
  ring.keep(std::move(fast));
  ASSERT_EQ(ring.size(), 1u);  // sampled: retained anyway
  ring.keep(trace_taking(2, 10));
  EXPECT_EQ(ring.size(), 1u);  // unsampled fast trace still dropped

  const std::string json = ring.dump_json();
  EXPECT_NE(json.find("\"trace_id\":2882400018"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sampled\":true"), std::string::npos) << json;
  // Context-free traces carry neither key (the common case stays small).
  TraceRing plain(TraceRing::Config{4, 0});
  plain.keep(trace_taking(3, 10));
  EXPECT_EQ(plain.dump_json().find("trace_id"), std::string::npos);
  EXPECT_EQ(plain.dump_json().find("sampled"), std::string::npos);
}

TEST(TraceRing, ConcurrentKeepAndDumpStaySane) {
  // Writers race keep() against readers pulling dump_json()/snapshot():
  // under TSan this is the data-race check; everywhere else it checks the
  // ring never loses its bounds and the JSON stays balanced.
  TraceRing ring(TraceRing::Config{32, 0});
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        Trace trace = trace_taking(static_cast<std::uint64_t>(w * kPerWriter + i), 100);
        trace.spans.push_back({Stage::CacheLookup, nullptr, 1, 2, false, false});
        ring.keep(std::move(trace));
      }
    });
  }
  std::thread reader([&ring] {
    for (int i = 0; i < 200; ++i) {
      const std::string json = ring.dump_json();
      EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
                std::count(json.begin(), json.end(), '}'));
      EXPECT_LE(ring.snapshot().size(), 32u);
    }
  });
  for (std::thread& writer : writers) writer.join();
  reader.join();
  EXPECT_EQ(ring.size(), 32u);
}

// ------------------------------------------- end-to-end through the solver

BatchSolver::Options traced_options() {
  BatchSolver::Options options;
  options.request_workers = 2;
  options.engine_workers = 2;
  options.portfolio.deadline = std::chrono::milliseconds{0};
  options.trace_capacity = 128;
  return options;
}

bool has_stage(const Trace& trace, Stage stage) {
  for (const Span& span : trace.spans) {
    if (span.stage == stage) return true;
  }
  return false;
}

TEST(BatchSolverTracing, ColdAndWarmRequestsLeaveTheRightSpans) {
  BatchSolver solver(traced_options());
  Rng rng(61);
  const Graph base = random_with_diameter_at_most(16, 2, 0.3, rng);

  SolveRequest cold;
  cold.graph = base;
  cold.p = PVec::L21();
  cold.id = 1;
  ASSERT_TRUE(solver.solve_one(cold).ok());

  SolveRequest warm;
  warm.graph = relabel(base, rng.permutation(base.n()));
  warm.p = PVec::L21();
  warm.id = 2;
  const SolveResponse warm_response = solver.solve_one(warm);
  ASSERT_TRUE(warm_response.ok());
  EXPECT_EQ(warm_response.source, ResponseSource::ResultCache);

  const std::vector<Trace> traces = solver.traces().snapshot();
  ASSERT_EQ(traces.size(), 2u);

  const Trace& cold_trace = traces[0];
  EXPECT_EQ(cold_trace.request_id, 1u);
  EXPECT_STREQ(cold_trace.result, "solved");
  EXPECT_TRUE(has_stage(cold_trace, Stage::Canonicalize));
  EXPECT_TRUE(has_stage(cold_trace, Stage::CacheLookup));
  EXPECT_TRUE(has_stage(cold_trace, Stage::Reduction));
  EXPECT_TRUE(has_stage(cold_trace, Stage::EngineRace));
  EXPECT_TRUE(has_stage(cold_trace, Stage::Verify));
  EXPECT_TRUE(has_stage(cold_trace, Stage::StoreWrite));
  // The race ran at least one engine; exactly one attempt won, every
  // attempt is nested and named.
  int attempts = 0;
  int winners = 0;
  for (const Span& span : cold_trace.spans) {
    if (span.stage != Stage::EngineAttempt) continue;
    ++attempts;
    EXPECT_TRUE(span.nested);
    EXPECT_NE(span.detail, nullptr);
    if (span.winner) ++winners;
  }
  EXPECT_GE(attempts, 1);
  EXPECT_EQ(winners, 1);

  const Trace& warm_trace = traces[1];
  EXPECT_EQ(warm_trace.request_id, 2u);
  EXPECT_STREQ(warm_trace.result, "result-cache");
  EXPECT_TRUE(has_stage(warm_trace, Stage::CacheLookup));
  EXPECT_FALSE(has_stage(warm_trace, Stage::EngineRace));
  EXPECT_FALSE(has_stage(warm_trace, Stage::EngineAttempt));
  EXPECT_FALSE(has_stage(warm_trace, Stage::StoreWrite));

  // Non-nested spans partition the request's own work: their sum cannot
  // exceed the measured total (nested engine attempts overlap the race
  // span and are excluded from the identity).
  for (const Trace& trace : traces) {
    std::uint64_t non_nested = 0;
    for (const Span& span : trace.spans) {
      if (!span.nested) non_nested += span.duration_ns;
    }
    EXPECT_LE(non_nested, trace.total_ns) << "request " << trace.request_id;
    EXPECT_GT(trace.total_ns, 0u);
  }
}

TEST(BatchSolverTracing, StageHistogramsPopulateAlongsideTraces) {
  BatchSolver solver(traced_options());
  Rng rng(67);
  for (int i = 0; i < 3; ++i) {
    SolveRequest request;
    request.graph = random_with_diameter_at_most(14, 2, 0.3, rng);
    request.p = PVec::L21();
    request.id = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(solver.solve_one(request).ok());
  }
  const obs::MetricsSnapshot snap = solver.metrics_registry().snapshot();
  ASSERT_NE(snap.histogram("request_ns"), nullptr);
  EXPECT_EQ(snap.histogram("request_ns")->count, 3u);
  ASSERT_NE(snap.histogram("canonical_ns"), nullptr);
  EXPECT_EQ(snap.histogram("canonical_ns")->count, 3u);
  ASSERT_NE(snap.histogram("engine_race_ns"), nullptr);
  EXPECT_GE(snap.histogram("engine_race_ns")->count, 1u);
  EXPECT_EQ(snap.counter_or("requests_total"), 3u);
}

TEST(BatchSolverTracing, SlowThresholdKeepsOnlySlowRequests) {
  BatchSolver::Options options = traced_options();
  // Nothing on these tiny instances takes a minute: the ring stays empty
  // while the histograms still record every request.
  options.trace_threshold = std::chrono::milliseconds{60'000};
  BatchSolver solver(options);
  Rng rng(71);
  SolveRequest request;
  request.graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  request.p = PVec::L21();
  ASSERT_TRUE(solver.solve_one(request).ok());
  EXPECT_EQ(solver.traces().size(), 0u);
  EXPECT_EQ(solver.metrics_registry().snapshot().histogram("request_ns")->count, 1u);
}

TEST(BatchSolverTracing, MetricsOffStillCountsButNeverTimes) {
  BatchSolver::Options options = traced_options();
  options.metrics = false;
  BatchSolver solver(options);
  Rng rng(73);
  const Graph base = random_with_diameter_at_most(14, 2, 0.3, rng);
  for (int i = 0; i < 2; ++i) {
    SolveRequest request;
    request.graph = relabel(base, rng.permutation(base.n()));
    request.p = PVec::L21();
    request.id = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(solver.solve_one(request).ok());
  }
  // Counters are always on (one relaxed add); only clocks and traces stop.
  EXPECT_EQ(solver.engine_solves(), 1u);
  const obs::MetricsSnapshot snap = solver.metrics_registry().snapshot();
  EXPECT_EQ(snap.counter_or("requests_total"), 2u);
  EXPECT_EQ(snap.counter_or("cache_result_hits"), 1u);
  EXPECT_EQ(snap.histogram("request_ns")->count, 0u);
  EXPECT_EQ(snap.histogram("canonical_ns")->count, 0u);
  EXPECT_EQ(solver.traces().size(), 0u);
}

TEST(BatchSolverTracing, BatchTracesCoalescedGroupsOnce) {
  BatchSolver solver(traced_options());
  Rng rng(79);
  const Graph base = random_with_diameter_at_most(14, 2, 0.3, rng);
  std::vector<SolveRequest> requests;
  for (int i = 0; i < 6; ++i) {
    SolveRequest request;
    request.graph = relabel(base, rng.permutation(base.n()));
    request.p = PVec::L21();
    request.id = static_cast<std::uint64_t>(i + 10);
    requests.push_back(std::move(request));
  }
  const std::vector<SolveResponse> responses = solver.solve_batch(requests);
  for (const SolveResponse& response : responses) EXPECT_TRUE(response.ok());

  const obs::MetricsSnapshot snap = solver.metrics_registry().snapshot();
  EXPECT_EQ(snap.counter_or("requests_total"), 6u);
  // One group leader solved; the other five were deduplicated.
  EXPECT_EQ(snap.counter_or("requests_coalesced"), 5u);
  // One trace per solved GROUP, not per request.
  EXPECT_EQ(solver.traces().size(), 1u);
}

}  // namespace
}  // namespace lptsp
