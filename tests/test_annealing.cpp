#include <gtest/gtest.h>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/lower_bounds.hpp"
#include "tsp/simulated_annealing.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance random_instance(int n, Rng& rng, int lo = 1, int hi = 9) {
  MetricInstance instance(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) instance.set_weight(i, j, rng.uniform_int(lo, hi));
  }
  return instance;
}

TEST(Annealing, TinyInstances) {
  EXPECT_EQ(simulated_annealing_path(MetricInstance(1)).cost, 0);
  MetricInstance pair(2);
  pair.set_weight(0, 1, 3);
  EXPECT_EQ(simulated_annealing_path(pair).cost, 3);
}

TEST(Annealing, RejectsBadCooling) {
  AnnealOptions options;
  options.cooling = 1.5;
  EXPECT_THROW(simulated_annealing_path(MetricInstance(5), options), precondition_error);
}

class AnnealingProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 503 + 7)};
};

TEST_P(AnnealingProperty, ValidAndSandwiched) {
  const MetricInstance instance = random_instance(12, rng_);
  AnnealOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam());
  const PathSolution solution = simulated_annealing_path(instance, options);
  EXPECT_TRUE(is_valid_order(solution.order, 12));
  EXPECT_EQ(path_length(instance, solution.order), solution.cost);
  EXPECT_GE(solution.cost, mst_lower_bound(instance));
}

TEST_P(AnnealingProperty, NearOptimalOnSmallInstances) {
  const MetricInstance instance = random_instance(9, rng_);
  AnnealOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam() + 1);
  const Weight annealed = simulated_annealing_path(instance, options).cost;
  const Weight optimal = brute_force_path(instance).cost;
  EXPECT_GE(annealed, optimal);
  EXPECT_LE(static_cast<double>(annealed), 1.1 * static_cast<double>(optimal));
}

TEST_P(AnnealingProperty, DeterministicForSeed) {
  const Graph graph = random_with_diameter_at_most(15, 2, 0.3, rng_);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  AnnealOptions options;
  options.seed = 99;
  const PathSolution first = simulated_annealing_path(reduced.instance, options);
  const PathSolution second = simulated_annealing_path(reduced.instance, options);
  EXPECT_EQ(first.cost, second.cost);
  EXPECT_EQ(first.order, second.order);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealingProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace lptsp
