#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "core/known_classes.hpp"
#include "core/tree_labeling.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(TreeL21, SingleVertexAndEdge) {
  EXPECT_EQ(l21_tree(Graph(1)).span, 0);
  const TreeL21Result edge = l21_tree(path_graph(2));
  EXPECT_EQ(edge.span, 2);
  EXPECT_TRUE(edge.is_delta_plus_one);
}

TEST(TreeL21, PathsMatchClosedForm) {
  for (int n = 2; n <= 12; ++n) {
    const TreeL21Result result = l21_tree(path_graph(n));
    EXPECT_EQ(result.span, l21_span_path(n)) << "n = " << n;
    EXPECT_TRUE(is_valid_labeling(path_graph(n), PVec::L21(), result.labeling));
  }
}

TEST(TreeL21, PathDichotomySwitchesAtFive) {
  // P_3, P_4 achieve Delta+1 = 3; P_5 onward needs Delta+2 = 4.
  EXPECT_TRUE(l21_tree(path_graph(4)).is_delta_plus_one);
  EXPECT_FALSE(l21_tree(path_graph(5)).is_delta_plus_one);
}

TEST(TreeL21, StarsAreDeltaPlusOne) {
  for (int n = 3; n <= 10; ++n) {
    const TreeL21Result result = l21_tree(star_graph(n));
    EXPECT_EQ(result.span, n);  // Delta + 1 = (n-1) + 1
    EXPECT_TRUE(result.is_delta_plus_one);
  }
}

TEST(TreeL21, DoubleStarMatchesOracle) {
  // Two adjacent centres each with 3 leaves. (Perhaps surprisingly this is
  // a Delta+1 tree: label the centres 0 and Delta+1 and the leaf sets fit
  // in between — verified here against the direct exact oracle.)
  Graph tree(8);
  tree.add_edge(0, 1);
  for (int leaf = 2; leaf <= 4; ++leaf) tree.add_edge(0, leaf);
  for (int leaf = 5; leaf <= 7; ++leaf) tree.add_edge(1, leaf);
  const TreeL21Result result = l21_tree(tree);
  EXPECT_EQ(max_degree(tree), 4);
  EXPECT_EQ(result.span, exact_labeling_branch_and_bound(tree, PVec::L21()).span);
  EXPECT_EQ(result.span, 5);  // Delta + 1
  EXPECT_TRUE(result.is_delta_plus_one);
}

TEST(TreeL21, RejectsNonTrees) {
  EXPECT_THROW(l21_tree(cycle_graph(5)), precondition_error);
  Graph forest(4);
  forest.add_edge(0, 1);
  forest.add_edge(2, 3);
  EXPECT_THROW(l21_tree(forest), precondition_error);
}

class TreeSweep : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 2027 + 9)};
};

TEST_P(TreeSweep, MatchesDirectExactOracle) {
  // Chang–Kuo DP vs the reduction-independent branch-and-bound labeler.
  for (int n = 2; n <= 9; ++n) {
    const Graph tree = random_tree(n, rng_);
    const TreeL21Result chang_kuo = l21_tree(tree);
    const ExactBBResult direct = exact_labeling_branch_and_bound(tree, PVec::L21());
    EXPECT_EQ(chang_kuo.span, direct.span) << "n = " << n;
  }
}

TEST_P(TreeSweep, DichotomyAndValidityAtScale) {
  const Graph tree = random_tree(60, rng_);
  const TreeL21Result result = l21_tree(tree);
  const int delta = max_degree(tree);
  EXPECT_TRUE(result.span == delta + 1 || result.span == delta + 2);
  EXPECT_TRUE(is_valid_labeling(tree, PVec::L21(), result.labeling));
  EXPECT_EQ(result.labeling.span(), result.span);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace lptsp
