#include <gtest/gtest.h>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "tsp/branch_bound.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/held_karp.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance random_instance(int n, Rng& rng, int lo = 1, int hi = 9) {
  MetricInstance instance(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) instance.set_weight(i, j, rng.uniform_int(lo, hi));
  }
  return instance;
}

TEST(BranchBound, TinyInstances) {
  EXPECT_EQ(branch_bound_path(MetricInstance(1)).cost, 0);
  MetricInstance pair(2);
  pair.set_weight(0, 1, 5);
  EXPECT_EQ(branch_bound_path(pair).cost, 5);
}

class BranchBoundCross : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 887 + 3)};
};

TEST_P(BranchBoundCross, MatchesBruteForceOnGeneralWeights) {
  for (int n = 3; n <= 8; ++n) {
    const MetricInstance instance = random_instance(n, rng_);
    const PathSolution bb = branch_bound_path(instance);
    const PathSolution bf = brute_force_path(instance);
    EXPECT_EQ(bb.cost, bf.cost) << "n = " << n;
    EXPECT_TRUE(is_valid_order(bb.order, n));
    EXPECT_EQ(path_length(instance, bb.order), bb.cost);
  }
}

TEST_P(BranchBoundCross, MatchesHeldKarpOnReducedInstances) {
  const Graph graph = random_with_diameter_at_most(14, 2, 0.3, rng_);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  EXPECT_EQ(branch_bound_path(reduced.instance).cost, held_karp_path(reduced.instance).cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BranchBoundCross, ::testing::Range(0, 8));

TEST(BranchBound, SolvesBeyondHeldKarpMemoryWall) {
  // n = 30 is far beyond the 2^n table; bounded metrics stay tractable.
  Rng rng(5);
  const Graph graph = random_with_diameter_at_most(30, 2, 0.3, rng);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  const PathSolution solution = branch_bound_path(reduced.instance);
  EXPECT_TRUE(is_valid_order(solution.order, 30));
  // The bounded-weight trivial bound (n-1)*pmin certifies optimality when
  // the graph has a Hamiltonian path of cheap edges.
  EXPECT_GE(solution.cost, 29);
}

TEST(BranchBound, NodeLimitIsEnforced) {
  Rng rng(9);
  const MetricInstance instance = random_instance(14, rng, 1, 100);
  BranchBoundOptions options;
  options.node_limit = 10;  // absurdly tight on purpose
  EXPECT_THROW(branch_bound_path(instance, options), precondition_error);
}

TEST(BranchBound, ZeroLimitMeansUnlimited) {
  Rng rng(11);
  const MetricInstance instance = random_instance(8, rng);
  BranchBoundOptions options;
  options.node_limit = 0;
  EXPECT_EQ(branch_bound_path(instance, options).cost, brute_force_path(instance).cost);
}

}  // namespace
}  // namespace lptsp
