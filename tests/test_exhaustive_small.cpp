#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "core/order_labeling.hpp"
#include "core/partition_paths.hpp"
#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "tsp/held_karp.hpp"

namespace lptsp {
namespace {

/// Exhaustive verification of Theorem 2 over ALL connected graphs of a
/// given order whose diameter fits p — the strongest correctness evidence
/// in the suite (no sampling bias).
struct ExhaustiveStats {
  int connected = 0;
  int in_scope = 0;  // diameter <= k
};

ExhaustiveStats sweep_all_graphs(int n, const PVec& p, bool also_direct_oracle) {
  ExhaustiveStats stats;
  const std::uint64_t masks = std::uint64_t{1} << (n * (n - 1) / 2);
  for (std::uint64_t mask = 0; mask < masks; ++mask) {
    const Graph graph = graph_from_edge_mask(n, mask);
    if (!is_connected(graph)) continue;
    ++stats.connected;
    if (diameter(graph) > p.k()) continue;
    ++stats.in_scope;

    const auto reduced = reduce_to_path_tsp(graph, p);
    const Weight via_tsp = held_karp_path(reduced.instance).cost;
    const Weight via_orders = min_span_over_all_orders(graph, p);
    EXPECT_EQ(via_tsp, via_orders) << "n=" << n << " mask=" << mask << " p=" << p.to_string();
    if (also_direct_oracle) {
      EXPECT_EQ(via_tsp, exact_labeling_branch_and_bound(graph, p).span)
          << "n=" << n << " mask=" << mask;
    }
  }
  return stats;
}

TEST(ExhaustiveTheorem2, AllGraphsOn4VerticesL21) {
  const ExhaustiveStats stats = sweep_all_graphs(4, PVec::L21(), true);
  EXPECT_EQ(stats.connected, 38);  // known count of connected labelled graphs on 4 vertices
  EXPECT_GT(stats.in_scope, 0);
}

TEST(ExhaustiveTheorem2, AllGraphsOn5VerticesL21) {
  const ExhaustiveStats stats = sweep_all_graphs(5, PVec::L21(), true);
  EXPECT_EQ(stats.connected, 728);  // known count on 5 vertices
  EXPECT_GT(stats.in_scope, 300);
}

TEST(ExhaustiveTheorem2, AllGraphsOn5VerticesL11AndL32) {
  sweep_all_graphs(5, PVec({1, 1}), false);
  sweep_all_graphs(5, PVec::Lpq(3, 2), false);
}

TEST(ExhaustiveTheorem2, AllGraphsOn5VerticesDiameter3) {
  sweep_all_graphs(5, PVec({2, 2, 1}), false);
}

TEST(ExhaustiveTheorem2, AllGraphsOn6VerticesL21) {
  const ExhaustiveStats stats = sweep_all_graphs(6, PVec::L21(), false);
  EXPECT_EQ(stats.connected, 26704);  // known count on 6 vertices
}

TEST(ExhaustiveCorollary2, AllDiameter2GraphsOn5Vertices) {
  // Formula vs TSP pipeline on every diameter-<=2 graph of order 5.
  const int n = 5;
  const std::uint64_t masks = std::uint64_t{1} << (n * (n - 1) / 2);
  int verified = 0;
  for (std::uint64_t mask = 0; mask < masks; ++mask) {
    const Graph graph = graph_from_edge_mask(n, mask);
    if (!is_connected(graph) || diameter(graph) > 2) continue;
    for (const auto& [p, q] : std::vector<std::pair<int, int>>{{2, 1}, {1, 2}, {3, 2}}) {
      const auto reduced = reduce_to_path_tsp(graph, PVec::Lpq(p, q));
      const Weight via_tsp = held_karp_path(reduced.instance).cost;
      EXPECT_EQ(lpq_span_diameter2(graph, p, q).span, via_tsp)
          << "mask=" << mask << " p=" << p << " q=" << q;
    }
    ++verified;
  }
  EXPECT_GT(verified, 300);
}

}  // namespace
}  // namespace lptsp
