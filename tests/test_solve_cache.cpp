#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/solve_cache.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

std::shared_ptr<const ResultEntry> entry_with_span(Weight span) {
  return std::make_shared<const ResultEntry>(ResultEntry{{}, span, false, Engine::ChainedLK});
}

TEST(SolveCache, FindReturnsWhatWasPut) {
  SolveCache cache;
  EXPECT_EQ(cache.find_result("a"), nullptr);
  cache.put_result("a", entry_with_span(42));
  const auto hit = cache.find_result("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->span, 42);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_EQ(stats.result_misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(SolveCache, LruEvictsColdestFirst) {
  SolveCache::Config config;
  config.capacity = 4;
  config.shards = 1;  // single shard makes the LRU order fully observable
  SolveCache cache(config);
  for (int i = 0; i < 4; ++i) {
    cache.put_result(std::to_string(i), entry_with_span(i));
  }
  // Touch "0" so "1" becomes the coldest entry.
  EXPECT_NE(cache.find_result("0"), nullptr);
  cache.put_result("4", entry_with_span(4));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.find_result("1"), nullptr);  // evicted
  EXPECT_NE(cache.find_result("0"), nullptr);  // kept: recently used
  EXPECT_NE(cache.find_result("4"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SolveCache, PutExistingResultKeepsTheBetterLabeling) {
  SolveCache::Config config;
  config.capacity = 2;
  config.shards = 1;
  SolveCache cache(config);
  cache.put_result("k", entry_with_span(5));
  // A worse concurrent solve must not degrade the resident entry...
  cache.put_result("k", entry_with_span(7));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find_result("k")->span, 5);
  // ...but a better one refreshes it in place.
  cache.put_result("k", entry_with_span(3));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find_result("k")->span, 3);
  // Equal span with an optimality certificate also wins.
  cache.put_result("k", std::make_shared<const ResultEntry>(
                            ResultEntry{{}, 3, true, Engine::HeldKarp, 0}));
  EXPECT_TRUE(cache.find_result("k")->optimal);
  cache.put_result("k", entry_with_span(3));  // non-optimal same span loses
  EXPECT_TRUE(cache.find_result("k")->optimal);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(SolveCache, ReductionAndResultNamespacesAreIndependent) {
  SolveCache cache;
  DistanceMatrix dist(2);
  dist.set(0, 1, 1);
  dist.set(1, 0, 1);
  cache.put_reduction("Gk", std::make_shared<const ReductionEntry>(ReductionEntry{dist, 1, true}));
  cache.put_result("GkP", entry_with_span(7));
  ASSERT_NE(cache.find_reduction("Gk"), nullptr);
  EXPECT_EQ(cache.find_reduction("Gk")->diameter, 1);
  ASSERT_NE(cache.find_result("GkP"), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.reduction_hits, 2u);
  EXPECT_EQ(stats.result_hits, 1u);
}

TEST(SolveCache, CapacityIsRespectedAcrossShards) {
  SolveCache::Config config;
  config.capacity = 64;
  config.shards = 8;
  SolveCache cache(config);
  for (int i = 0; i < 1000; ++i) {
    cache.put_result("key-" + std::to_string(i), entry_with_span(i));
  }
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.stats().evictions, 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SolveCache, ConcurrentMixedTrafficSmoke) {
  SolveCache::Config config;
  config.capacity = 128;
  config.shards = 4;
  SolveCache cache(config);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 977 + 5);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::string key = "key-" + std::to_string(rng.uniform_int(0, 200));
        if (rng.bernoulli(0.5)) {
          cache.put_result(key, entry_with_span(op));
        } else {
          const auto hit = cache.find_result(key);
          if (hit != nullptr) {
            EXPECT_GE(hit->span, 0);  // entries stay alive while referenced
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 128u);
  const CacheStats stats = cache.stats();
  // Every op was either a put (counted as insertion or refresh) or a find
  // (counted as hit or miss); the totals must stay within the op budget.
  EXPECT_GT(stats.result_hits + stats.result_misses, 0u);
  EXPECT_LE(stats.result_hits + stats.result_misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace lptsp
