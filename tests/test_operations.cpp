#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(Complement, ComplementOfCompleteIsEmpty) {
  const Graph graph = complement(complete_graph(5));
  EXPECT_EQ(graph.m(), 0);
}

TEST(Complement, IsInvolution) {
  Rng rng(3);
  const Graph graph = erdos_renyi(15, 0.4, rng);
  EXPECT_TRUE(complement(complement(graph)) == graph);
}

TEST(Complement, EdgeCountsSumToAllPairs) {
  Rng rng(5);
  const Graph graph = erdos_renyi(12, 0.3, rng);
  EXPECT_EQ(graph.m() + complement(graph).m(), 12 * 11 / 2);
}

TEST(Power, FirstPowerIsIdentity) {
  Rng rng(7);
  const Graph graph = random_connected(12, 0.2, rng);
  EXPECT_TRUE(power(graph, 1) == graph);
}

TEST(Power, DiameterPowerIsComplete) {
  const Graph graph = path_graph(6);
  EXPECT_TRUE(power(graph, 5) == complete_graph(6));
}

TEST(Power, SquareOfPath) {
  const Graph square = power(path_graph(5), 2);
  EXPECT_TRUE(square.has_edge(0, 2));
  EXPECT_FALSE(square.has_edge(0, 3));
  EXPECT_EQ(square.m(), 4 + 3);
}

TEST(Power, RejectsNonPositiveExponent) {
  EXPECT_THROW(power(path_graph(3), 0), precondition_error);
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const Graph graph = cycle_graph(6);
  const Graph sub = induced_subgraph(graph, {0, 1, 3});
  EXPECT_EQ(sub.n(), 3);
  EXPECT_EQ(sub.m(), 1);  // only {0,1} survives
  EXPECT_TRUE(sub.has_edge(0, 1));
}

TEST(InducedSubgraph, RejectsDuplicates) {
  EXPECT_THROW(induced_subgraph(path_graph(4), {0, 0}), precondition_error);
}

TEST(UnionAndJoin, DisjointUnionKeepsBothSides) {
  const Graph left = path_graph(3);
  const Graph right = complete_graph(3);
  const Graph both = disjoint_union(left, right);
  EXPECT_EQ(both.n(), 6);
  EXPECT_EQ(both.m(), 2 + 3);
  EXPECT_FALSE(is_connected(both));
}

TEST(UnionAndJoin, JoinAddsAllCrossEdges) {
  const Graph joined = join(Graph(2), Graph(3));
  EXPECT_EQ(joined.m(), 6);
  EXPECT_TRUE(joined == complete_bipartite(2, 3));
}

TEST(UnionAndJoin, JoinOfCompletesIsComplete) {
  EXPECT_TRUE(join(complete_graph(2), complete_graph(3)) == complete_graph(5));
}

TEST(UniversalVertex, MakesDiameterAtMostTwo) {
  const Graph graph = add_universal_vertex(path_graph(8));
  EXPECT_EQ(graph.n(), 9);
  EXPECT_EQ(graph.degree(8), 8);
  EXPECT_LE(diameter(graph), 2);
}

TEST(Relabel, PreservesDegreeMultiset) {
  Rng rng(11);
  const Graph graph = erdos_renyi(10, 0.4, rng);
  const auto perm = rng.permutation(10);
  const Graph renamed = relabel(graph, perm);
  std::vector<int> degrees_before;
  std::vector<int> degrees_after;
  for (int v = 0; v < 10; ++v) {
    degrees_before.push_back(graph.degree(v));
    degrees_after.push_back(renamed.degree(v));
  }
  std::sort(degrees_before.begin(), degrees_before.end());
  std::sort(degrees_after.begin(), degrees_after.end());
  EXPECT_EQ(degrees_before, degrees_after);
  EXPECT_EQ(graph.m(), renamed.m());
}

TEST(Relabel, MapsEdgesThroughPermutation) {
  const Graph graph = Graph::from_edges(3, {{0, 1}});
  const Graph renamed = relabel(graph, {2, 0, 1});
  EXPECT_TRUE(renamed.has_edge(2, 0));
  EXPECT_FALSE(renamed.has_edge(0, 1));
}

TEST(Relabel, RejectsNonPermutation) {
  EXPECT_THROW(relabel(path_graph(3), {0, 0, 1}), precondition_error);
  EXPECT_THROW(relabel(path_graph(3), {0, 1}), precondition_error);
}

}  // namespace
}  // namespace lptsp
