#include <gtest/gtest.h>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "tsp/brute_force.hpp"
#include "tsp/chained_lk.hpp"
#include "tsp/construct.hpp"
#include "tsp/lin_kernighan.hpp"
#include "tsp/lower_bounds.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance random_instance(int n, Rng& rng, int lo = 1, int hi = 9) {
  MetricInstance instance(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) instance.set_weight(i, j, rng.uniform_int(lo, hi));
  }
  return instance;
}

TEST(LkStyle, ValidAndNotWorseThanStart) {
  Rng rng(1);
  const MetricInstance instance = random_instance(20, rng);
  const Order start = rng.permutation(20);
  const Weight start_cost = path_length(instance, start);
  const PathSolution solution = lin_kernighan_style_path_from(instance, start);
  EXPECT_TRUE(is_valid_order(solution.order, 20));
  EXPECT_LE(solution.cost, start_cost);
  EXPECT_EQ(path_length(instance, solution.order), solution.cost);
}

TEST(LkStyle, RequiresValidStart) {
  const MetricInstance instance(4);
  EXPECT_THROW(lin_kernighan_style_path_from(instance, {0, 1}), precondition_error);
}

class ChainedLkProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 419 + 31)};
};

TEST_P(ChainedLkProperty, FindsOptimaOnSmallInstances) {
  const MetricInstance instance = random_instance(9, rng_);
  ChainedLkOptions options;
  options.restarts = 3;
  options.kicks = 30;
  options.seed = static_cast<std::uint64_t>(GetParam());
  const PathSolution lk = chained_lk_path(instance, options);
  const PathSolution exact = brute_force_path(instance);
  EXPECT_TRUE(is_valid_order(lk.order, 9));
  EXPECT_GE(lk.cost, exact.cost);
  // Chained LK with 90 local searches virtually always hits n=9 optima;
  // allow a tiny slack to keep the test robust rather than flaky.
  EXPECT_LE(static_cast<double>(lk.cost), 1.05 * static_cast<double>(exact.cost));
}

TEST_P(ChainedLkProperty, DeterministicForFixedSeed) {
  const MetricInstance instance = random_instance(15, rng_);
  ChainedLkOptions options;
  options.restarts = 2;
  options.kicks = 10;
  options.seed = 12345;
  const PathSolution first = chained_lk_path(instance, options);
  const PathSolution second = chained_lk_path(instance, options);
  EXPECT_EQ(first.cost, second.cost);
  EXPECT_EQ(first.order, second.order);
}

TEST_P(ChainedLkProperty, ParallelMatchesSerialCost) {
  const MetricInstance instance = random_instance(14, rng_);
  ChainedLkOptions serial;
  serial.restarts = 3;
  serial.kicks = 8;
  serial.seed = 777;
  serial.threads = 1;
  ChainedLkOptions parallel = serial;
  parallel.threads = 0;
  // Restart streams are seeded independently, so the best cost is
  // identical regardless of scheduling.
  EXPECT_EQ(chained_lk_path(instance, serial).cost, chained_lk_path(instance, parallel).cost);
}

TEST_P(ChainedLkProperty, NeverWorseThanPlainLk) {
  const Graph graph = random_with_diameter_at_most(16, 2, 0.3, rng_);
  const auto reduced = reduce_to_path_tsp(graph, PVec::L21());
  Rng lk_rng(99);
  const PathSolution plain = lin_kernighan_style_path(reduced.instance, lk_rng);
  ChainedLkOptions options;
  options.restarts = 2;
  options.kicks = 15;
  options.seed = 99;
  const PathSolution chained = chained_lk_path(reduced.instance, options);
  EXPECT_LE(chained.cost, plain.cost);
  EXPECT_GE(chained.cost, mst_lower_bound(reduced.instance));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainedLkProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace lptsp
