#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/journal.hpp"

namespace lptsp::obs {
namespace {

TEST(Journal, EmitRetainsInOrderWithMonotoneSeq) {
  Journal journal(8);
  journal.emit(EventType::StoreDegraded, EventLevel::Error, nullptr, 0, 0, 3);
  journal.emit(EventType::StoreHealed, EventLevel::Info);
  journal.emit(EventType::BrownoutRung, EventLevel::Warn, nullptr, 0, 0, 0, 1);

  const std::vector<JournalEvent> events = journal.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, EventType::StoreDegraded);
  EXPECT_EQ(events[0].arg0, 3);
  EXPECT_EQ(events[1].type, EventType::StoreHealed);
  EXPECT_EQ(events[2].type, EventType::BrownoutRung);
  EXPECT_EQ(events[2].arg1, 1);
  // Sequence numbers are strictly increasing, timestamps monotone.
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_LE(events[0].t_ns, events[2].t_ns);
  EXPECT_EQ(journal.emitted(), 3u);
}

TEST(Journal, RingEvictsOldestAndCountsEverything) {
  Journal journal(4);
  for (int i = 0; i < 10; ++i) {
    journal.emit(EventType::FaultFired, EventLevel::Warn, "store.append", 0, 0, i);
  }
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.emitted(), 10u);
  const std::vector<JournalEvent> events = journal.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the newest four survive.
  EXPECT_EQ(events.front().arg0, 6);
  EXPECT_EQ(events.back().arg0, 9);
}

TEST(Journal, ZeroCapacityStillCountsEmissions) {
  Journal journal(0);
  journal.emit(EventType::WireFault, EventLevel::Error);
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.emitted(), 1u);
  EXPECT_EQ(journal.dump_json(), "[]");
}

TEST(Journal, DumpJsonCarriesOptionalFieldsOnlyWhenSet) {
  Journal journal(8);
  journal.emit(EventType::OverloadReject, EventLevel::Error, nullptr,
               /*trace_id=*/0x1234u, /*peer=*/7);
  journal.emit(EventType::StoreHealed, EventLevel::Info);

  const std::string json = journal.dump_json();
  EXPECT_NE(json.find("\"type\":\"overload-reject\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"level\":\"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":4660"), std::string::npos) << json;
  EXPECT_NE(json.find("\"peer\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"type\":\"store-healed\""), std::string::npos) << json;
  // The context-free heal event carries no trace/peer keys.
  const std::size_t healed_at = json.find("store-healed");
  EXPECT_EQ(json.find("trace_id", healed_at), std::string::npos) << json;
  // Shape: brackets and braces balance.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['), std::count(json.begin(), json.end(), ']'));
}

TEST(Journal, ClearDropsEventsButNotTheSequence) {
  Journal journal(8);
  journal.emit(EventType::StoreHealed, EventLevel::Info);
  const std::uint64_t seq_before = journal.snapshot().front().seq;
  journal.clear();
  EXPECT_EQ(journal.size(), 0u);
  journal.emit(EventType::StoreHealed, EventLevel::Info);
  EXPECT_GT(journal.snapshot().front().seq, seq_before);
}

TEST(Journal, ConcurrentEmitLosesNoCount) {
  Journal journal(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.emit(EventType::FaultFired, EventLevel::Warn, "net.read_short");
      }
    });
  }
  std::thread reader([&journal] {
    for (int i = 0; i < 100; ++i) {
      const std::string json = journal.dump_json();
      EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
                std::count(json.begin(), json.end(), '}'));
    }
  });
  for (std::thread& thread : threads) thread.join();
  reader.join();
  EXPECT_EQ(journal.emitted(), std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(journal.size(), 64u);
  // Seqs in the retained window are consecutive (nothing lost or reordered
  // inside the ring itself).
  const std::vector<JournalEvent> events = journal.snapshot();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(Journal, EveryEventTypeAndLevelHasAName) {
  for (int raw = 0; raw <= static_cast<int>(EventType::TunerPretrim); ++raw) {
    EXPECT_STRNE(journal_event_name(static_cast<EventType>(raw)), "unknown");
  }
  for (int raw = 0; raw <= static_cast<int>(EventLevel::Error); ++raw) {
    EXPECT_STRNE(journal_level_name(static_cast<EventLevel>(raw)), "unknown");
  }
  static_assert(journal_event_name(EventType::BrownoutRung)[0] == 'b');
  static_assert(journal_level_name(EventLevel::Warn)[0] == 'w');
}

TEST(Journal, ProcessGlobalSingletonIsStable) {
  Journal& a = journal();
  Journal& b = journal();
  EXPECT_EQ(&a, &b);
  const std::uint64_t before = a.emitted();
  a.emit(EventType::StoreHealed, EventLevel::Info);
  EXPECT_EQ(b.emitted(), before + 1);
  a.clear();
}

}  // namespace
}  // namespace lptsp::obs
