#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "params/cotree.hpp"
#include "params/modular_decomposition.hpp"
#include "params/neighborhood_diversity.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(NeighborhoodDiversity, KnownValues) {
  EXPECT_EQ(neighborhood_diversity(complete_graph(6)), 1);   // all true twins
  EXPECT_EQ(neighborhood_diversity(Graph(6)), 1);            // all false twins
  EXPECT_EQ(neighborhood_diversity(star_graph(6)), 2);       // hub + leaves
  EXPECT_EQ(neighborhood_diversity(complete_bipartite(3, 4)), 2);
  EXPECT_EQ(neighborhood_diversity(path_graph(4)), 4);       // P4 has no twins
}

TEST(NeighborhoodDiversity, ClassesAreModulesAndHomogeneous) {
  Rng rng(5);
  const Graph graph = erdos_renyi(18, 0.35, rng);
  const NdPartition partition = neighborhood_diversity_partition(graph);
  int covered = 0;
  for (std::size_t c = 0; c < partition.classes.size(); ++c) {
    covered += static_cast<int>(partition.classes[c].size());
    EXPECT_TRUE(is_module(graph, partition.classes[c]));
    for (const int v : partition.classes[c]) {
      EXPECT_EQ(partition.class_of[static_cast<std::size_t>(v)], static_cast<int>(c));
    }
  }
  EXPECT_EQ(covered, graph.n());
}

TEST(NeighborhoodDiversity, CompleteMultipartiteClassCount) {
  const Graph graph = complete_multipartite({3, 3, 2});
  EXPECT_EQ(neighborhood_diversity(graph), 3);
}

TEST(ModuleClosure, GrowsToSmallestModule) {
  // In P4 = 0-1-2-3, the closure of {0,1} must absorb everything.
  const Graph p4 = path_graph(4);
  EXPECT_EQ(module_closure(p4, {0, 1}).size(), 4u);
  // In a star, two leaves already form a module.
  const Graph star = star_graph(5);
  const auto closure = module_closure(star, {1, 2});
  EXPECT_EQ(closure.size(), 2u);
  EXPECT_TRUE(is_module(star, closure));
}

TEST(ModularDecomposition, LeafForSingleton) {
  const MDTree tree = modular_decomposition(Graph(1));
  EXPECT_EQ(tree.node(tree.root).kind, MDNode::Kind::Leaf);
}

TEST(ModularDecomposition, SeriesForComplete) {
  const MDTree tree = modular_decomposition(complete_graph(4));
  EXPECT_EQ(tree.node(tree.root).kind, MDNode::Kind::Series);
  EXPECT_EQ(tree.node(tree.root).children.size(), 4u);
}

TEST(ModularDecomposition, ParallelForEmpty) {
  const MDTree tree = modular_decomposition(Graph(4));
  EXPECT_EQ(tree.node(tree.root).kind, MDNode::Kind::Parallel);
}

TEST(ModularDecomposition, PrimeForP4) {
  const MDTree tree = modular_decomposition(path_graph(4));
  EXPECT_EQ(tree.node(tree.root).kind, MDNode::Kind::Prime);
  EXPECT_EQ(tree.node(tree.root).children.size(), 4u);
}

TEST(ModularDecomposition, RootCoversAllVertices) {
  Rng rng(9);
  const Graph graph = erdos_renyi(14, 0.3, rng);
  const MDTree tree = modular_decomposition(graph);
  EXPECT_EQ(tree.node(tree.root).vertices.size(), 14u);
}

TEST(ModularDecomposition, ChildrenPartitionParent) {
  Rng rng(13);
  const Graph graph = erdos_renyi(12, 0.4, rng);
  const MDTree tree = modular_decomposition(graph);
  for (const auto& node : tree.nodes) {
    if (node.kind == MDNode::Kind::Leaf) continue;
    std::size_t total = 0;
    for (const int child : node.children) total += tree.node(child).vertices.size();
    EXPECT_EQ(total, node.vertices.size());
  }
}

TEST(ModularDecomposition, NonLeafChildrenAreModules) {
  Rng rng(17);
  const Graph graph = erdos_renyi(12, 0.35, rng);
  const MDTree tree = modular_decomposition(graph);
  for (const auto& node : tree.nodes) {
    if (node.vertices.size() >= 2) {
      EXPECT_TRUE(is_module(graph, node.vertices) ||
                  node.vertices.size() == static_cast<std::size_t>(graph.n()));
    }
  }
}

TEST(ModularWidth, KnownValues) {
  EXPECT_EQ(modular_width(path_graph(4)), 4);       // P4 itself is prime
  EXPECT_EQ(modular_width(cycle_graph(5)), 5);      // C5 is prime
  EXPECT_EQ(modular_width(complete_graph(8)), 2);   // cograph
  EXPECT_EQ(modular_width(star_graph(8)), 2);       // cograph
  EXPECT_EQ(modular_width(complete_bipartite(3, 5)), 2);
}

TEST(ModularWidth, CographsHaveWidthTwo) {
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = random_cograph(15, rng);
    EXPECT_LE(modular_width(graph), 2);
  }
}

class PropositionSweep : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 1009 + 5)};
};

TEST_P(PropositionSweep, Prop1ModularWidthOfComplement) {
  const Graph graph = erdos_renyi(11, 0.2 + 0.05 * (GetParam() % 7), rng_);
  EXPECT_EQ(modular_width(graph), modular_width(complement(graph)));
}

TEST_P(PropositionSweep, Prop2NdOfSquareAtMostModularWidth) {
  const Graph graph = random_connected(11, 0.15 + 0.05 * (GetParam() % 5), rng_);
  EXPECT_LE(neighborhood_diversity(power(graph, 2)), std::max(modular_width(graph), 1));
}

TEST_P(PropositionSweep, NdOfPowersNeverIncreases) {
  // nd(G) >= nd(G^k) (Fiala et al., used in Theorem 4's proof).
  const Graph graph = random_connected(11, 0.25, rng_);
  const int nd_of_g = neighborhood_diversity(graph);
  for (int k = 1; k <= 4; ++k) {
    EXPECT_LE(neighborhood_diversity(power(graph, k)), nd_of_g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropositionSweep, ::testing::Range(0, 10));

TEST(Cotree, RecognizesCographs) {
  EXPECT_TRUE(is_cograph(complete_graph(5)));
  EXPECT_TRUE(is_cograph(Graph(5)));
  EXPECT_TRUE(is_cograph(star_graph(5)));
  EXPECT_TRUE(is_cograph(complete_bipartite(2, 3)));
}

TEST(Cotree, RejectsP4AndCycles) {
  EXPECT_FALSE(is_cograph(path_graph(4)));
  EXPECT_FALSE(is_cograph(cycle_graph(5)));
  EXPECT_FALSE(is_cograph(petersen_graph()));
}

TEST(Cotree, RootCoversAllAndChildrenPartition) {
  Rng rng(31);
  const Graph graph = random_cograph(16, rng);
  const auto tree = build_cotree(graph);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->node(tree->root).vertices.size(), 16u);
  for (const auto& node : tree->nodes) {
    if (node.is_leaf) continue;
    std::size_t total = 0;
    for (const int child : node.children) total += tree->node(child).vertices.size();
    EXPECT_EQ(total, node.vertices.size());
    EXPECT_GE(node.children.size(), 2u);
  }
}

}  // namespace
}  // namespace lptsp
