#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/journal.hpp"
#include "obs/profile.hpp"

namespace lptsp::obs {
namespace {

TEST(KeyProfileTable, RecordAccumulatesPerKey) {
  KeyProfileTable table;
  table.record(0xabc, 10, 1000, "held_karp", true, true);
  table.record(0xabc, 10, 3000, "chained_lk", true, false);
  table.record(0xdef, 12, 500, "branch_bound", false, false);

  EXPECT_EQ(table.size(), 2u);
  const std::vector<KeyProfileTable::Entry> top = table.top(10);
  ASSERT_EQ(top.size(), 2u);
  // Hottest first by attributed engine time.
  EXPECT_EQ(top[0].key_hash, 0xabcu);
  EXPECT_EQ(top[0].solves, 2u);
  EXPECT_EQ(top[0].engine_ns, 4000u);
  EXPECT_EQ(top[0].last_engine_ns, 3000u);
  EXPECT_STREQ(top[0].last_engine, "chained_lk");
  EXPECT_EQ(top[0].deadline_hits, 1u);
  EXPECT_EQ(top[0].deadline_misses, 1u);
  EXPECT_EQ(top[0].n, 10);
  EXPECT_EQ(top[0].size_bucket, 4);  // bit_width(10)
  // The unbounded race contributed no deadline outcome.
  EXPECT_EQ(top[1].deadline_hits, 0u);
  EXPECT_EQ(top[1].deadline_misses, 0u);
}

TEST(KeyProfileTable, SpaceSavingEvictionKeepsHotKeys) {
  KeyProfileTable::Config config;
  config.shards = 1;  // one shard so the per-shard bound is the table bound
  config.per_shard = 4;
  KeyProfileTable table(config);

  // One genuinely hot key, then a stream of one-shot cold keys.
  for (int i = 0; i < 50; ++i) table.record(0x1, 8, 10'000, "held_karp", true, true);
  for (std::uint64_t k = 2; k < 40; ++k) table.record(k, 8, 1, "chained_lk", false, false);

  EXPECT_EQ(table.size(), 4u);
  EXPECT_GT(table.evictions(), 0u);
  const std::vector<KeyProfileTable::Entry> top = table.top(1);
  ASSERT_EQ(top.size(), 1u);
  // The hot key survived the cold stream (space-saving guarantee).
  EXPECT_EQ(top[0].key_hash, 0x1u);
  EXPECT_GE(top[0].engine_ns, 500'000u);
}

TEST(KeyProfileTable, EvictionInheritsVictimTotalsAndResetsTheRest) {
  KeyProfileTable::Config config;
  config.shards = 1;
  config.per_shard = 1;
  KeyProfileTable table(config);
  table.record(0xa, 8, 100, "held_karp", true, true);
  table.record(0xa, 8, 100, "held_karp", true, true);
  // 0xb evicts 0xa: inherits its 200ns total (the space-saving
  // overestimate) but starts its own solve/deadline bookkeeping.
  table.record(0xb, 9, 50, "chained_lk", true, false);
  const std::vector<KeyProfileTable::Entry> top = table.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key_hash, 0xbu);
  EXPECT_EQ(top[0].engine_ns, 250u);  // 200 inherited + 50 own
  EXPECT_EQ(top[0].solves, 1u);
  EXPECT_EQ(top[0].deadline_hits, 0u);
  EXPECT_EQ(top[0].deadline_misses, 1u);
  EXPECT_EQ(top[0].n, 9);
  EXPECT_EQ(table.evictions(), 1u);
}

TEST(KeyProfileTable, ConcurrentRecordLosesNoSolves) {
  KeyProfileTable::Config config;
  config.shards = 4;
  config.per_shard = 32;
  KeyProfileTable table(config);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // 16 distinct keys across 4 shards; no evictions, so every solve
        // must land in some entry exactly once.
        table.record(static_cast<std::uint64_t>(i % 16 + 1), 8, 10, "held_karp", true,
                     (t + i) % 2 == 0);
      }
    });
  }
  std::thread reader([&table] {
    for (int i = 0; i < 200; ++i) {
      const std::string json = table.to_json(16);
      EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
                std::count(json.begin(), json.end(), '}'));
    }
  });
  for (std::thread& thread : threads) thread.join();
  reader.join();
  EXPECT_EQ(table.evictions(), 0u);
  std::uint64_t solves = 0;
  std::uint64_t outcomes = 0;
  for (const KeyProfileTable::Entry& entry : table.top(32)) {
    solves += entry.solves;
    outcomes += entry.deadline_hits + entry.deadline_misses;
  }
  EXPECT_EQ(solves, std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(outcomes, std::uint64_t{kThreads} * kPerThread);
}

TEST(KeyProfileTable, ToJsonShapeAndHexKeys) {
  KeyProfileTable table;
  table.record(0xdeadbeef, 10, 1234, "held_karp", true, true);
  const std::string json = table.to_json(4);
  EXPECT_NE(json.find("\"key\":\"0xdeadbeef\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"last_engine\":\"held_karp\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"engine_ns\":1234"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Empty table renders an empty array, not malformed JSON.
  KeyProfileTable empty;
  EXPECT_EQ(empty.to_json(4), "[]");
}

TEST(SloTracker, HitsMissesSlackAndRatio) {
  SloTracker slo;
  // 100ms budget: 40ms elapsed = hit with 60ms slack; 150ms = miss.
  slo.record(40'000'000, 100);
  slo.record(150'000'000, 100);
  slo.record_cache_hit(100);
  EXPECT_EQ(slo.hits(), 2u);
  EXPECT_EQ(slo.misses(), 1u);
  EXPECT_EQ(slo.rolling_hit_percent(), 66);  // 2/3 floored

  const std::string json = slo.to_json();
  EXPECT_NE(json.find("\"deadline_hits\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"deadline_misses\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rolling_hit_percent\":66"), std::string::npos) << json;
  EXPECT_NE(json.find("\"slack_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"overrun_ns\""), std::string::npos) << json;
}

TEST(SloTracker, EmptyTrackerReportsPerfectRatio) {
  SloTracker slo;
  EXPECT_EQ(slo.rolling_hit_percent(), 100);
  const std::string json = slo.to_json();
  EXPECT_NE(json.find("\"hit_ratio\":1.00"), std::string::npos) << json;
  EXPECT_NE(json.find("\"breached\":false"), std::string::npos) << json;
}

TEST(SloTracker, RegistersContractNames) {
  SloTracker slo;
  MetricRegistry registry;
  slo.register_into(registry, &slo);
  slo.record(40'000'000, 100);
  slo.record(150'000'000, 100);
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_or("deadline_hits"), 1u);
  EXPECT_EQ(snapshot.counter_or("deadline_misses"), 1u);
  EXPECT_NE(snapshot.histogram("deadline_slack_ns"), nullptr);
  EXPECT_NE(snapshot.histogram("deadline_overrun_ns"), nullptr);
  bool saw_gauge = false;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "deadline_hit_ratio_percent") {
      saw_gauge = true;
      EXPECT_EQ(gauge.value, 50);
    }
  }
  EXPECT_TRUE(saw_gauge);
  registry.deregister(&slo);
}

TEST(SloTracker, JournalsBreachAndRecovery) {
  journal().clear();
  SloTracker::Config config;
  config.window = 64;
  config.breach_percent = 90;
  config.min_samples = 8;
  SloTracker slo(config);

  // 8 straight hits: healthy, nothing journaled.
  for (int i = 0; i < 8; ++i) slo.record(1'000'000, 100);
  // 8 straight misses drag the rolling ratio to 50%: one breach event.
  for (int i = 0; i < 8; ++i) slo.record(200'000'000, 100);
  // Recover with hits until the rolling ratio is back at/above 90%.
  for (int i = 0; i < 80; ++i) slo.record(1'000'000, 100);

  int breaches = 0;
  int recoveries = 0;
  for (const JournalEvent& event : journal().snapshot()) {
    if (event.type == EventType::SloBreach) {
      ++breaches;
      EXPECT_EQ(event.level, EventLevel::Warn);
      EXPECT_LT(event.arg0, 90);   // the crossing ratio
      EXPECT_EQ(event.arg1, 90);   // the target
    }
    if (event.type == EventType::SloRecovered) {
      ++recoveries;
      EXPECT_EQ(event.level, EventLevel::Info);
      EXPECT_GE(event.arg0, 90);
    }
  }
  // Exactly one crossing each way — the tracker journals transitions,
  // not every sample below target.
  EXPECT_EQ(breaches, 1);
  EXPECT_EQ(recoveries, 1);
  journal().clear();
}

TEST(SloTracker, NoBreachVerdictBeforeMinSamples) {
  journal().clear();
  SloTracker::Config config;
  config.min_samples = 32;
  SloTracker slo(config);
  for (int i = 0; i < 31; ++i) slo.record(200'000'000, 100);  // all misses
  for (const JournalEvent& event : journal().snapshot()) {
    EXPECT_NE(event.type, EventType::SloBreach);
  }
  journal().clear();
}

TEST(JournalCapacity, SetCapacityKeepsNewestAndSeq) {
  Journal journal(8);
  for (int i = 0; i < 8; ++i) {
    journal.emit(EventType::FaultFired, EventLevel::Warn, "store.append", 0, 0, i);
  }
  journal.set_capacity(3);
  EXPECT_EQ(journal.capacity(), 3u);
  EXPECT_EQ(journal.size(), 3u);
  std::vector<JournalEvent> events = journal.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().arg0, 5);  // newest three survive
  EXPECT_EQ(events.back().arg0, 7);
  const std::uint64_t last_seq = events.back().seq;
  // Growing never invents events, and seq numbering continues unbroken.
  journal.set_capacity(16);
  EXPECT_EQ(journal.size(), 3u);
  journal.emit(EventType::StoreHealed, EventLevel::Info);
  events = journal.snapshot();
  EXPECT_EQ(events.back().seq, last_seq + 1);
  EXPECT_EQ(journal.emitted(), 9u);
}

TEST(JournalCapacity, DumpJsonSinceFiltersOldEvents) {
  Journal journal(8);
  journal.emit(EventType::StoreHealed, EventLevel::Info);
  journal.emit(EventType::StoreDegraded, EventLevel::Error, nullptr, 0, 0, 3);
  const std::vector<JournalEvent> events = journal.snapshot();
  ASSERT_EQ(events.size(), 2u);
  const std::uint64_t first_seq = events.front().seq;

  // since = first seq: only the second event is returned.
  const std::string tail = journal.dump_json(first_seq);
  EXPECT_EQ(tail.find("store-healed"), std::string::npos) << tail;
  EXPECT_NE(tail.find("store-degraded"), std::string::npos) << tail;
  // since = newest seq: empty array, the poller is caught up.
  EXPECT_EQ(journal.dump_json(events.back().seq), "[]");
  // since = 0 keeps the full dump.
  EXPECT_NE(journal.dump_json().find("store-healed"), std::string::npos);
}


// format_fixed2 is the profile JSON's only float renderer; the direct
// double->uint64 cast it replaced was undefined for NaN, infinities and
// anything past 2^64 hundredths. Pin the clamped behavior.
TEST(FormatFixed2, RendersNormalValues) {
  EXPECT_EQ(format_fixed2(0.0), "0.00");
  EXPECT_EQ(format_fixed2(1.0), "1.00");
  EXPECT_EQ(format_fixed2(0.125), "0.13");   // rounds half up
  EXPECT_EQ(format_fixed2(1234.5), "1234.50");
  EXPECT_EQ(format_fixed2(0.004), "0.00");
}

TEST(FormatFixed2, NonFiniteAndOutOfRangeInputsAreClamped) {
  constexpr const char* kClamp = "1000000000000000.00";  // the 1e15 ceiling
  EXPECT_EQ(format_fixed2(std::numeric_limits<double>::quiet_NaN()), "0.00");
  EXPECT_EQ(format_fixed2(-std::numeric_limits<double>::infinity()), "0.00");
  EXPECT_EQ(format_fixed2(-42.5), "0.00");  // rates and ratios are never negative
  EXPECT_EQ(format_fixed2(std::numeric_limits<double>::infinity()), kClamp);
  EXPECT_EQ(format_fixed2(1e30), kClamp);
  EXPECT_EQ(format_fixed2(1e15), kClamp);
  // Just under the ceiling still renders exactly.
  EXPECT_EQ(format_fixed2(999.99), "999.99");
}

// bucket_mean_ns is the admission predictor's hot-key signal: mean engine
// time per solve across every tracked key of one size bucket.
TEST(KeyProfileTable, BucketMeanAveragesAcrossKeysOfOneBucket) {
  KeyProfileTable table;
  // n=10 and n=12 share size bucket 4 (bit_width); n=20 lands in 5.
  table.record(0x1, 10, 1'000, "held_karp", false, false);
  table.record(0x1, 10, 3'000, "held_karp", false, false);
  table.record(0x2, 12, 8'000, "chained_lk", false, false);
  table.record(0x3, 20, 50'000, "branch_bound", false, false);

  EXPECT_EQ(table.bucket_mean_ns(4), (1'000u + 3'000u + 8'000u) / 3);
  EXPECT_EQ(table.bucket_mean_ns(5), 50'000u);
  EXPECT_EQ(table.bucket_mean_ns(6), 0u);  // no history: caller must fall back
}

}  // namespace
}  // namespace lptsp::obs
