#include <gtest/gtest.h>

#include "core/approx.hpp"
#include "core/l1_labeling.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/operations.hpp"
#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(L1Labeling, Diameter2PowerIsCompleteSoSpanIsNMinus1) {
  // "L(1,1)-LABELING on graphs with diameter 2 is trivially solvable
  // because G^2 is a complete graph" — the paper's remark after Thm 3.
  Rng rng(1);
  const Graph graph = random_with_diameter_at_most(9, 2, 0.3, rng);
  const L1Result result = l1_labeling_exact(graph, 2);
  EXPECT_EQ(result.span, graph.n() - 1);
}

TEST(L1Labeling, PathSquareColoring) {
  // P_6^2 needs 3 colors.
  const L1Result result = l1_labeling_exact(path_graph(6), 2);
  EXPECT_EQ(result.span, 2);
  EXPECT_TRUE(result.optimal);
}

TEST(L1Labeling, K1EqualsPlainColoring) {
  const L1Result result = l1_labeling_exact(petersen_graph(), 1);
  EXPECT_EQ(result.span, 2);  // chi(Petersen) = 3
}

TEST(L1Labeling, GreedyUpperBoundsExact) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = random_connected(12, 0.2, rng);
    EXPECT_GE(l1_labeling_greedy(graph, 2).span, l1_labeling_exact(graph, 2).span);
  }
}

class NdKernelSweep : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 359 + 11)};
};

TEST_P(NdKernelSweep, KernelSolverMatchesExact) {
  const Graph graph = random_connected(12, 0.15 + 0.05 * (GetParam() % 5), rng_);
  for (int k = 1; k <= 3; ++k) {
    const L1Result exact = l1_labeling_exact(graph, k);
    const L1Result kernel = l1_labeling_nd_kernel(graph, k);
    EXPECT_EQ(kernel.span, exact.span) << "k = " << k;
    EXPECT_TRUE(kernel.optimal);
    EXPECT_LE(kernel.kernel_size, graph.n());
    EXPECT_TRUE(is_valid_labeling(graph, PVec::ones(k), kernel.labeling));
  }
}

TEST_P(NdKernelSweep, KernelShrinksOnTwinRichGraphs) {
  // Cographs joined with cographs have many twins in the square.
  const Graph graph = join(random_cograph(6, rng_), random_cograph(6, rng_));
  const L1Result kernel = l1_labeling_nd_kernel(graph, 2);
  // G^2 is complete here (diameter <= 2), so the kernel is... still the
  // clique class of everything: size n. Use k = 1 for actual shrink.
  const L1Result kernel1 = l1_labeling_nd_kernel(graph, 1);
  EXPECT_LE(kernel1.kernel_size, graph.n());
  EXPECT_EQ(kernel1.span, l1_labeling_exact(graph, 1).span);
  EXPECT_EQ(kernel.span, graph.n() - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NdKernelSweep, ::testing::Range(0, 6));

TEST(PmaxApprox, ValidAndBounded) {
  Rng rng(7);
  const Graph graph = random_with_diameter_at_most(8, 2, 0.3, rng);
  const PVec p = PVec::L21();
  const PmaxApproxResult approx = pmax_approx_labeling(graph, p);
  EXPECT_TRUE(is_valid_labeling(graph, p, approx.labeling));
  EXPECT_TRUE(approx.bound_certified);

  SolveOptions options;
  options.engine = Engine::HeldKarp;
  const Weight optimal = solve_labeling(graph, p, options).span;
  // Corollary 3: span <= pmax * lambda_1 <= pmax * lambda_p.
  EXPECT_LE(approx.span, static_cast<Weight>(p.pmax()) * optimal);
  EXPECT_GE(approx.span, optimal);
}

TEST(PmaxApprox, WorksBeyondTheoremTwoScope) {
  // The pmax-approximation needs no diameter bound: P_8 with k = 2.
  const Graph graph = path_graph(8);
  const PVec p = PVec::L21();
  const PmaxApproxResult approx = pmax_approx_labeling(graph, p);
  EXPECT_TRUE(is_valid_labeling(graph, p, approx.labeling));
  // lambda_{2,1}(P_n) = 4 for n >= 5; the approximation is within 2x.
  EXPECT_LE(approx.span, 8);
}

TEST(PmaxApprox, GreedyVariantStillValid) {
  Rng rng(9);
  const Graph graph = random_connected(14, 0.25, rng);
  const PmaxApproxResult approx = pmax_approx_labeling(graph, PVec({2, 2, 1}), false);
  EXPECT_TRUE(is_valid_labeling(graph, PVec({2, 2, 1}), approx.labeling));
  EXPECT_FALSE(approx.bound_certified);
}

class PmaxRatioSweep : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 137 + 3)};
};

TEST_P(PmaxRatioSweep, RatioNeverExceedsPmax) {
  const Graph graph = random_with_diameter_at_most(7, 2, 0.35, rng_);
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  for (const PVec& p : {PVec::L21(), PVec::Lpq(3, 2), PVec({2, 2})}) {
    const Weight optimal = solve_labeling(graph, p, options).span;
    const PmaxApproxResult approx = pmax_approx_labeling(graph, p);
    if (optimal > 0) {
      EXPECT_LE(static_cast<double>(approx.span) / static_cast<double>(optimal),
                static_cast<double>(p.pmax()) + 1e-9)
          << "p = " << p.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmaxRatioSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace lptsp
