#include <gtest/gtest.h>

#include "tsp/brute_force.hpp"
#include "tsp/chained_lk.hpp"
#include "tsp/construct.hpp"
#include "tsp/local_search.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance random_instance(int n, Rng& rng, int lo = 1, int hi = 9) {
  MetricInstance instance(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) instance.set_weight(i, j, rng.uniform_int(lo, hi));
  }
  return instance;
}

TEST(NearestNeighbor, ValidPathWithConsistentCost) {
  Rng rng(1);
  const MetricInstance instance = random_instance(12, rng);
  const PathSolution solution = nearest_neighbor_path(instance, 0);
  EXPECT_TRUE(is_valid_order(solution.order, 12));
  EXPECT_EQ(solution.order.front(), 0);
  EXPECT_EQ(path_length(instance, solution.order), solution.cost);
}

TEST(NearestNeighbor, BestOverStartsIsNoWorse) {
  Rng rng(2);
  const MetricInstance instance = random_instance(10, rng);
  Rng starts_rng(3);
  const PathSolution best = best_nearest_neighbor_path(instance, 10, starts_rng);
  for (int start = 0; start < 10; ++start) {
    EXPECT_LE(best.cost, nearest_neighbor_path(instance, start).cost);
  }
}

TEST(GreedyEdge, ValidPath) {
  Rng rng(4);
  const MetricInstance instance = random_instance(15, rng);
  const PathSolution solution = greedy_edge_path(instance);
  EXPECT_TRUE(is_valid_order(solution.order, 15));
  EXPECT_EQ(path_length(instance, solution.order), solution.cost);
}

TEST(GreedyEdge, SingleAndPair) {
  EXPECT_EQ(greedy_edge_path(MetricInstance(1)).cost, 0);
  MetricInstance pair(2);
  pair.set_weight(0, 1, 7);
  EXPECT_EQ(greedy_edge_path(pair).cost, 7);
}

TEST(CheapestInsertion, ValidPath) {
  Rng rng(5);
  const MetricInstance instance = random_instance(13, rng);
  const PathSolution solution = cheapest_insertion_path(instance);
  EXPECT_TRUE(is_valid_order(solution.order, 13));
  EXPECT_EQ(path_length(instance, solution.order), solution.cost);
}

class LocalSearchProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 97 + 13)};
};

TEST_P(LocalSearchProperty, TwoOptNeverWorsens) {
  const MetricInstance instance = random_instance(14, rng_);
  Order order = rng_.permutation(14);
  const Weight before = path_length(instance, order);
  two_opt(instance, order);
  EXPECT_TRUE(is_valid_order(order, 14));
  EXPECT_LE(path_length(instance, order), before);
}

TEST_P(LocalSearchProperty, TwoOptReachesLocalOptimum) {
  const MetricInstance instance = random_instance(10, rng_);
  Order order = rng_.permutation(10);
  two_opt(instance, order);
  EXPECT_FALSE(two_opt_pass(instance, order));  // no improving move remains
}

TEST_P(LocalSearchProperty, OrOptNeverWorsens) {
  const MetricInstance instance = random_instance(14, rng_);
  Order order = rng_.permutation(14);
  const Weight before = path_length(instance, order);
  or_opt(instance, order);
  EXPECT_TRUE(is_valid_order(order, 14));
  EXPECT_LE(path_length(instance, order), before);
}

TEST_P(LocalSearchProperty, VndAtLeastAsGoodAsTwoOptAlone) {
  const MetricInstance instance = random_instance(12, rng_);
  Order two_opt_order = rng_.permutation(12);
  Order vnd_order = two_opt_order;
  two_opt(instance, two_opt_order);
  vnd(instance, vnd_order);
  EXPECT_LE(path_length(instance, vnd_order), path_length(instance, two_opt_order));
}

TEST_P(LocalSearchProperty, TwoOptFromNnBeatsOrEqualsNn) {
  const MetricInstance instance = random_instance(16, rng_);
  const PathSolution nn = nearest_neighbor_path(instance, 0);
  Order improved = nn.order;
  two_opt(instance, improved);
  EXPECT_LE(path_length(instance, improved), nn.cost);
}

TEST_P(LocalSearchProperty, HeuristicsNeverBeatExact) {
  const MetricInstance instance = random_instance(8, rng_);
  const Weight optimal = brute_force_path(instance).cost;
  EXPECT_GE(nearest_neighbor_path(instance, 0).cost, optimal);
  EXPECT_GE(greedy_edge_path(instance).cost, optimal);
  EXPECT_GE(cheapest_insertion_path(instance).cost, optimal);
  Order order = rng_.permutation(8);
  vnd(instance, order);
  EXPECT_GE(path_length(instance, order), optimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchProperty, ::testing::Range(0, 10));

TEST(DoubleBridge, ProducesValidPermutation) {
  Rng rng(9);
  const Order order = rng.permutation(12);
  for (int trial = 0; trial < 20; ++trial) {
    const Order kicked = double_bridge_kick(order, rng);
    EXPECT_TRUE(is_valid_order(kicked, 12));
  }
}

TEST(DoubleBridge, TinyPathsPassThrough) {
  Rng rng(10);
  const Order order{0, 2, 1};
  EXPECT_EQ(double_bridge_kick(order, rng), order);
}

TEST(DoubleBridge, UsuallyChangesTheOrder) {
  Rng rng(11);
  const Order order = rng.permutation(20);
  int changed = 0;
  for (int trial = 0; trial < 20; ++trial) {
    if (double_bridge_kick(order, rng) != order) ++changed;
  }
  EXPECT_GE(changed, 15);
}

}  // namespace
}  // namespace lptsp
