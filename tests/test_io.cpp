#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(EdgeListIo, RoundTripThroughStream) {
  Rng rng(1);
  const Graph original = random_connected(14, 0.3, rng);
  std::stringstream buffer;
  write_edge_list(buffer, original);
  const Graph loaded = read_edge_list(buffer);
  EXPECT_TRUE(original == loaded);
}

TEST(EdgeListIo, ParsesCommentsAndBlankLines) {
  std::stringstream input("# a comment\n\n3 2\n# another\n0 1\n\n1 2\n");
  const Graph graph = read_edge_list(input);
  EXPECT_EQ(graph.n(), 3);
  EXPECT_EQ(graph.m(), 2);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 2));
}

TEST(EdgeListIo, RejectsMissingHeader) {
  std::stringstream input("# only comments\n");
  EXPECT_THROW(read_edge_list(input), precondition_error);
}

TEST(EdgeListIo, RejectsTruncatedEdgeSection) {
  std::stringstream input("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(input), precondition_error);
}

TEST(EdgeListIo, RejectsOutOfRangeEndpoint) {
  std::stringstream input("2 1\n0 5\n");
  EXPECT_THROW(read_edge_list(input), precondition_error);
}

TEST(EdgeListIo, RejectsDuplicateEdge) {
  std::stringstream input("3 2\n0 1\n1 0\n");
  EXPECT_THROW(read_edge_list(input), precondition_error);
}

TEST(EdgeListIo, RejectsMalformedHeader) {
  std::stringstream input("three two\n");
  EXPECT_THROW(read_edge_list(input), precondition_error);
}

TEST(EdgeListIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lptsp_io_test.graph";
  const Graph original = petersen_graph();
  write_edge_list_file(path, original);
  const Graph loaded = read_edge_list_file(path);
  EXPECT_TRUE(original == loaded);
  std::remove(path.c_str());
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/dir/file.graph"), precondition_error);
}

}  // namespace
}  // namespace lptsp
