#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

TEST(EdgeListIo, RoundTripThroughStream) {
  Rng rng(1);
  const Graph original = random_connected(14, 0.3, rng);
  std::stringstream buffer;
  write_edge_list(buffer, original);
  const Graph loaded = read_edge_list(buffer);
  EXPECT_TRUE(original == loaded);
}

TEST(EdgeListIo, ParsesCommentsAndBlankLines) {
  std::stringstream input("# a comment\n\n3 2\n# another\n0 1\n\n1 2\n");
  const Graph graph = read_edge_list(input);
  EXPECT_EQ(graph.n(), 3);
  EXPECT_EQ(graph.m(), 2);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 2));
}

TEST(EdgeListIo, RejectsMissingHeader) {
  std::stringstream input("# only comments\n");
  EXPECT_THROW(read_edge_list(input), precondition_error);
}

TEST(EdgeListIo, RejectsTruncatedEdgeSection) {
  std::stringstream input("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(input), precondition_error);
}

TEST(EdgeListIo, RejectsOutOfRangeEndpoint) {
  std::stringstream input("2 1\n0 5\n");
  EXPECT_THROW(read_edge_list(input), precondition_error);
}

TEST(EdgeListIo, RejectsDuplicateEdge) {
  std::stringstream input("3 2\n0 1\n1 0\n");
  EXPECT_THROW(read_edge_list(input), precondition_error);
}

TEST(EdgeListIo, RejectsMalformedHeader) {
  std::stringstream input("three two\n");
  EXPECT_THROW(read_edge_list(input), precondition_error);
}

TEST(EdgeListIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lptsp_io_test.graph";
  const Graph original = petersen_graph();
  write_edge_list_file(path, original);
  const Graph loaded = read_edge_list_file(path);
  EXPECT_TRUE(original == loaded);
  std::remove(path.c_str());
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/dir/file.graph"), precondition_error);
}

// ---------------------------------------------------------------------------
// Binary graph codec (the lptspd wire graph payload).
// ---------------------------------------------------------------------------

TEST(BinaryGraphIo, RoundTripsRandomAndDegenerateGraphs) {
  Rng rng(5);
  std::vector<Graph> cases = {Graph(0), Graph(1), Graph(5), complete_graph(9), path_graph(12),
                              star_graph(7)};
  for (int trial = 0; trial < 30; ++trial) {
    cases.push_back(erdos_renyi(rng.uniform_int(2, 40), rng.uniform01(), rng));
  }
  for (const Graph& graph : cases) {
    std::vector<std::uint8_t> bytes;
    append_graph_binary(bytes, graph);
    EXPECT_EQ(bytes.size(), graph_binary_size(graph));
    Graph decoded(0);
    std::string error;
    std::size_t offset = 0;
    ASSERT_TRUE(decode_graph_binary(bytes.data(), bytes.size(), offset, decoded, error))
        << error;
    EXPECT_EQ(offset, bytes.size());
    EXPECT_EQ(decoded, graph);
  }
}

TEST(BinaryGraphIo, DecodeAdvancesOffsetPastTheEncodingOnly) {
  std::vector<std::uint8_t> bytes;
  append_graph_binary(bytes, complete_graph(4));
  const std::size_t first_size = bytes.size();
  append_graph_binary(bytes, path_graph(3));
  std::size_t offset = 0;
  Graph decoded(0);
  std::string error;
  ASSERT_TRUE(decode_graph_binary(bytes.data(), bytes.size(), offset, decoded, error));
  EXPECT_EQ(offset, first_size);
  EXPECT_EQ(decoded, complete_graph(4));
  ASSERT_TRUE(decode_graph_binary(bytes.data(), bytes.size(), offset, decoded, error));
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(decoded, path_graph(3));
}

TEST(BinaryGraphIo, RejectsMalformedEncodingsWithoutThrowing) {
  std::vector<std::uint8_t> valid;
  append_graph_binary(valid, complete_graph(5));

  // Every strict prefix is a typed truncation error.
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    Graph decoded(0);
    std::string error;
    std::size_t offset = 0;
    EXPECT_FALSE(decode_graph_binary(valid.data(), cut, offset, decoded, error));
    EXPECT_FALSE(error.empty());
  }

  const auto expect_reject = [](std::vector<std::uint8_t> bytes, int max_vertices = 1 << 20) {
    Graph decoded(0);
    std::string error;
    std::size_t offset = 0;
    EXPECT_FALSE(
        decode_graph_binary(bytes.data(), bytes.size(), offset, decoded, error, max_vertices));
    EXPECT_FALSE(error.empty());
  };

  // Vertex count beyond the limit is refused before any allocation.
  expect_reject({0xff, 0xff, 0xff, 0xff}, 1000);
  // Forward degree larger than the remaining vertex range.
  expect_reject({2, 0, 0, 0, /*deg(0)=*/5, 0, 0, 0});
  // Neighbor <= self (backward edge / self-loop).
  expect_reject({3, 0, 0, 0, /*deg(0)=*/1, 0, 0, 0, /*u=*/0, 0, 0, 0,
                 /*deg(1)=*/0, 0, 0, 0, /*deg(2)=*/0, 0, 0, 0});
  // Neighbors not strictly ascending (duplicate edge).
  expect_reject({3, 0, 0, 0, /*deg(0)=*/2, 0, 0, 0, /*u=*/2, 0, 0, 0, /*u=*/2, 0, 0, 0,
                 /*deg(1)=*/0, 0, 0, 0, /*deg(2)=*/0, 0, 0, 0});
  // Neighbor index out of range.
  expect_reject({2, 0, 0, 0, /*deg(0)=*/1, 0, 0, 0, /*u=*/7, 0, 0, 0, /*deg(1)=*/0, 0, 0, 0});
}

}  // namespace
}  // namespace lptsp
