#include <gtest/gtest.h>

#include <chrono>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "service/portfolio.hpp"
#include "tsp/branch_bound.hpp"
#include "tsp/chained_lk.hpp"
#include "tsp/held_karp.hpp"
#include "tsp/local_search.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

MetricInstance random_instance(int n, Rng& rng, int lo = 1, int hi = 9) {
  MetricInstance instance(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) instance.set_weight(i, j, rng.uniform_int(lo, hi));
  }
  return instance;
}

/// The profiling contract the README documents: a completed engine run's
/// work counts are deterministic functions of (instance, options) —
/// identical whether the kernels dispatch the forced-scalar tier or
/// whatever wider tier this machine runs natively. Nanoseconds differ
/// across tiers; work counts must not, or cross-machine comparisons of
/// work rates would be meaningless.
TEST(WorkCountersIsa, HeldKarpWorkIdenticalUnderScalarAndNativeDispatch) {
  const IsaTier native = kernels::detected_isa_tier();
  const IsaTier restore = kernels::active_isa_tier();
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 3);
    const MetricInstance instance = random_instance(11 + seed % 3, rng);

    kernels::set_isa_tier(IsaTier::Scalar);
    const HeldKarpRun scalar = held_karp_path_run(instance);
    kernels::set_isa_tier(native);
    const HeldKarpRun wide = held_karp_path_run(instance);

    ASSERT_TRUE(scalar.completed);
    ASSERT_TRUE(wide.completed);
    EXPECT_EQ(scalar.solution.cost, wide.solution.cost) << "seed=" << seed;
    EXPECT_EQ(scalar.layers, wide.layers) << "seed=" << seed;
    EXPECT_EQ(scalar.cells, wide.cells) << "seed=" << seed;
    EXPECT_GT(scalar.layers, 0u);
    EXPECT_GT(scalar.cells, 0u);
  }
  kernels::set_isa_tier(restore);
}

TEST(WorkCountersIsa, HeldKarpCellsIndependentOfThreadCount) {
  Rng rng(17);
  const MetricInstance instance = random_instance(13, rng);
  HeldKarpOptions serial;
  serial.threads = 1;
  HeldKarpOptions pooled;
  pooled.threads = 0;
  const HeldKarpRun a = held_karp_path_run(instance, serial);
  const HeldKarpRun b = held_karp_path_run(instance, pooled);
  EXPECT_EQ(a.layers, b.layers);
  EXPECT_EQ(a.cells, b.cells);
  // A completed DP writes exactly one cell per (subset, end) pair it
  // processes; for free endpoints that is sum over layers of C(n,k)*k.
  EXPECT_EQ(a.layers, 13u);
}

TEST(WorkCountersIsa, BranchBoundWorkIdenticalUnderScalarAndNativeDispatch) {
  const IsaTier native = kernels::detected_isa_tier();
  const IsaTier restore = kernels::active_isa_tier();
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 4241 + 9);
    const MetricInstance instance = random_instance(10, rng);

    kernels::set_isa_tier(IsaTier::Scalar);
    const BranchBoundRun scalar = branch_bound_path_run(instance);
    kernels::set_isa_tier(native);
    const BranchBoundRun wide = branch_bound_path_run(instance);

    ASSERT_TRUE(scalar.completed);
    ASSERT_TRUE(wide.completed);
    EXPECT_EQ(scalar.nodes, wide.nodes) << "seed=" << seed;
    EXPECT_EQ(scalar.pruned, wide.pruned) << "seed=" << seed;
    EXPECT_GT(scalar.nodes, 0);
  }
  kernels::set_isa_tier(restore);
}

TEST(WorkCountersIsa, ChainedLkWorkIdenticalUnderScalarAndNativeDispatch) {
  const IsaTier native = kernels::detected_isa_tier();
  const IsaTier restore = kernels::active_isa_tier();
  for (int seed = 0; seed < 4; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 271 + 5);
    const MetricInstance instance = random_instance(16, rng);
    ChainedLkOptions options;
    options.restarts = 2;
    options.kicks = 12;
    options.seed = static_cast<std::uint64_t>(seed) + 1;
    options.threads = 1;

    kernels::set_isa_tier(IsaTier::Scalar);
    const ChainedLkRun scalar = chained_lk_path_run(instance, options);
    kernels::set_isa_tier(native);
    const ChainedLkRun wide = chained_lk_path_run(instance, options);

    ASSERT_TRUE(scalar.completed);
    ASSERT_TRUE(wide.completed);
    EXPECT_EQ(scalar.solution.cost, wide.solution.cost) << "seed=" << seed;
    EXPECT_EQ(scalar.kicks, wide.kicks) << "seed=" << seed;
    EXPECT_EQ(scalar.accepted, wide.accepted) << "seed=" << seed;
    EXPECT_EQ(scalar.wakes, wide.wakes) << "seed=" << seed;
    EXPECT_EQ(scalar.moves, wide.moves) << "seed=" << seed;
    // Every restart runs its full kick schedule when uncancelled.
    EXPECT_EQ(scalar.kicks, 2u * 12u);
    EXPECT_GT(scalar.wakes, 0u);
  }
  kernels::set_isa_tier(restore);
}

TEST(WorkCountersIsa, ChainedLkWorkIndependentOfThreadCount) {
  Rng rng(23);
  const MetricInstance instance = random_instance(14, rng);
  ChainedLkOptions serial;
  serial.restarts = 3;
  serial.kicks = 8;
  serial.seed = 99;
  serial.threads = 1;
  ChainedLkOptions pooled = serial;
  pooled.threads = 0;
  const ChainedLkRun a = chained_lk_path_run(instance, serial);
  const ChainedLkRun b = chained_lk_path_run(instance, pooled);
  EXPECT_EQ(a.kicks, b.kicks);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.wakes, b.wakes);
  EXPECT_EQ(a.moves, b.moves);
}

TEST(PathOptimizerStats, CountsWakesAndMovesAndResets) {
  Rng rng(7);
  const MetricInstance instance = random_instance(20, rng);
  PathOptimizer optimizer(instance);
  Order order = rng.permutation(20);
  optimizer.optimize(order);
  // optimize() wakes every vertex at least once; a random start on a
  // random metric essentially always admits improving moves.
  EXPECT_GE(optimizer.stats().wakes, 20u);
  EXPECT_GT(optimizer.stats().moves, 0u);
  const std::uint64_t wakes_after_first = optimizer.stats().wakes;
  // A second optimize from the fixpoint finds nothing but still wakes.
  optimizer.optimize(order);
  EXPECT_GT(optimizer.stats().wakes, wakes_after_first);
  optimizer.reset_stats();
  EXPECT_EQ(optimizer.stats().wakes, 0u);
  EXPECT_EQ(optimizer.stats().moves, 0u);
}

TEST(EngineWork, MergeAndAnyBehave) {
  obs::EngineWork a;
  EXPECT_FALSE(a.any());
  a.bb_nodes = 3;
  a.hk_cells = 5;
  obs::EngineWork b;
  b.bb_nodes = 2;
  b.lk_kicks = 7;
  a.merge(b);
  EXPECT_EQ(a.bb_nodes, 5u);
  EXPECT_EQ(a.lk_kicks, 7u);
  EXPECT_EQ(a.hk_cells, 5u);
  EXPECT_TRUE(a.any());
}

TEST(WorkCountersAggregate, AddTotalsAndRegistryNames) {
  obs::WorkCounters counters;
  obs::EngineWork work;
  work.bb_nodes = 10;
  work.bb_pruned = 4;
  work.lk_kicks = 3;
  work.hk_layers = 2;
  work.hk_cells = 100;
  counters.add(work);
  counters.add(work);
  const obs::EngineWork totals = counters.totals();
  EXPECT_EQ(totals.bb_nodes, 20u);
  EXPECT_EQ(totals.bb_pruned, 8u);
  EXPECT_EQ(totals.lk_kicks, 6u);
  EXPECT_EQ(totals.lk_accepted, 0u);
  EXPECT_EQ(totals.hk_cells, 200u);

  obs::MetricRegistry registry;
  counters.register_into(registry, &counters);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_or("engine_work_bb_nodes"), 20u);
  EXPECT_EQ(snapshot.counter_or("engine_work_hk_cells"), 200u);
  EXPECT_EQ(snapshot.counter_or("engine_work_lk_accepted", 7), 0u);
  registry.deregister(&counters);

  const std::string json = counters.to_json(2'000'000'000);  // 2s uptime
  EXPECT_NE(json.find("\"branch_bound\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"nodes\":20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cells\":200"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cells_per_s\":100.00"), std::string::npos) << json;
}

TEST(PortfolioWork, AttemptsCarryWorkAndOutcomeMergesIt) {
  TaskPool pool(4);
  PortfolioOptions options;
  options.deadline = std::chrono::milliseconds{0};  // run everything out
  options.learn = false;
  EnginePortfolio portfolio(pool, options);
  Rng rng(11);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  const MetricInstance instance = reduce_to_path_tsp(graph, PVec::L21(), 1).instance;

  const PortfolioOutcome outcome = portfolio.race(instance);
  ASSERT_GE(outcome.attempts.size(), 2u);

  obs::EngineWork manual;
  bool any_attempt_worked = false;
  for (const EngineAttempt& attempt : outcome.attempts) {
    if (attempt.work.any()) any_attempt_worked = true;
    manual.merge(attempt.work);
    // Work fields match the engine that ran: the exact slot never reports
    // LK kicks and the heuristic slot never reports DP cells.
    if (attempt.engine == Engine::HeldKarp) {
      EXPECT_EQ(attempt.work.lk_kicks, 0u);
      EXPECT_GT(attempt.work.hk_cells, 0u);
    }
    if (attempt.engine == Engine::ChainedLK) {
      EXPECT_EQ(attempt.work.hk_cells, 0u);
      EXPECT_GT(attempt.work.lk_wakes, 0u);
    }
  }
  EXPECT_TRUE(any_attempt_worked);
  EXPECT_EQ(outcome.work.bb_nodes, manual.bb_nodes);
  EXPECT_EQ(outcome.work.lk_kicks, manual.lk_kicks);
  EXPECT_EQ(outcome.work.hk_cells, manual.hk_cells);

  // The portfolio's lifetime counters absorbed the same totals.
  const obs::EngineWork lifetime = portfolio.work().totals();
  EXPECT_GE(lifetime.hk_cells, manual.hk_cells);
  EXPECT_GE(lifetime.lk_wakes, manual.lk_wakes);
}

}  // namespace
}  // namespace lptsp
