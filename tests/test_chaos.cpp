#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/labeling.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/batch_solver.hpp"
#include "store/backend.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

// Chaos coverage for the serving stack: scripted fault schedules against a
// REAL in-process server + client + durable store, asserting the three
// robustness invariants end to end — never crash, never return an
// unverified-wrong labeling, always recover once the fault clears.
//
// (The fault-site unit behaviour for the store layers lives in
// test_store_log / test_store_kv; this file drives whole-stack schedules.)

/// Every test arms its own schedule; nothing may leak between tests (or
/// into other suites in the same binary).
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

SolveRequest request_for(const Graph& graph, std::uint64_t id) {
  SolveRequest request;
  request.graph = graph;
  request.p = PVec::L21();
  request.id = id;
  return request;
}

/// An Ok response must carry a labeling that verifies against the
/// caller's own graph — the never-lie invariant every chaos schedule
/// re-checks on every success.
void expect_valid_if_ok(const SolveResponse& response, const Graph& graph) {
  if (!response.ok()) return;
  ASSERT_EQ(response.labeling.labels.size(), static_cast<std::size_t>(graph.n()))
      << response.message;
  EXPECT_TRUE(is_valid_labeling(graph, PVec::L21(), response.labeling));
  EXPECT_EQ(response.labeling.span(), response.span);
}

TEST_F(ChaosTest, FiringSequencesAreSeedDeterministic) {
  // Same (probability, seed) => same fire/no-fire sequence, run to run.
  std::vector<bool> first;
  fault::arm(FaultSite::StoreAppend, 0.5, 42);
  for (int i = 0; i < 200; ++i) first.push_back(fault::should_fail(FaultSite::StoreAppend));
  fault::arm(FaultSite::StoreAppend, 0.5, 42);  // re-arm resets the stream
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(fault::should_fail(FaultSite::StoreAppend), first[static_cast<std::size_t>(i)]);
  }
  // A different seed produces a different sequence (overwhelmingly).
  fault::arm(FaultSite::StoreAppend, 0.5, 43);
  std::vector<bool> other;
  for (int i = 0; i < 200; ++i) other.push_back(fault::should_fail(FaultSite::StoreAppend));
  EXPECT_NE(first, other);
  // max_fires caps the total number of injected failures.
  fault::arm(FaultSite::StoreAppend, 1.0, 7, /*max_fires=*/3);
  int fired = 0;
  for (int i = 0; i < 50; ++i) fired += fault::should_fail(FaultSite::StoreAppend) ? 1 : 0;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fault::fires(FaultSite::StoreAppend), 3u);
}

TEST_F(ChaosTest, EnvSpecParsingArmsAndRejects) {
  std::string error;
  ASSERT_TRUE(fault::arm_from_spec("store.fsync:1:9,engine.stall:0.5:3:75", error)) << error;
  EXPECT_TRUE(fault::armed(FaultSite::StoreFsync));
  EXPECT_TRUE(fault::armed(FaultSite::EngineStall));
  EXPECT_EQ(fault::param(FaultSite::EngineStall), 75u);
  const std::string described = fault::describe();
  EXPECT_NE(described.find("store.fsync"), std::string::npos) << described;
  EXPECT_NE(described.find("engine.stall"), std::string::npos) << described;
  fault::disarm_all();
  EXPECT_EQ(fault::describe(), "none");

  EXPECT_FALSE(fault::arm_from_spec("no.such.site:1:1", error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fault::arm_from_spec("store.append:notaprob:1", error));
  EXPECT_FALSE(fault::arm_from_spec("store.append", error));
}

TEST_F(ChaosTest, StoreDegradesUnderWriteFaultsAndHealsAfterwards) {
  const std::string path = ::testing::TempDir() + "lptsp_chaos_degraded.store";
  std::remove(path.c_str());

  BatchSolver::Options options;
  options.store_path = path;
  options.store_degraded_after_failures = 2;
  options.store_reopen_probe_interval = std::chrono::milliseconds{10};
  options.portfolio.deadline = std::chrono::milliseconds{150};
  Rng rng(21);
  std::vector<Graph> graphs;
  for (int i = 0; i < 6; ++i) graphs.push_back(random_with_diameter_at_most(10, 2, 0.4, rng));
  {
    BatchSolver solver(options);
    ASSERT_NE(solver.store(), nullptr);

    // Every append fails: serving must continue (cache-only) and the
    // backend must flip read-only after the configured failure run.
    fault::arm(FaultSite::StoreAppend, 1.0, 5);
    for (int i = 0; i < 4; ++i) {
      const SolveResponse response =
          solver.solve_one(request_for(graphs[static_cast<std::size_t>(i)], 100 + i));
      ASSERT_TRUE(response.ok()) << response.message;
      expect_valid_if_ok(response, graphs[static_cast<std::size_t>(i)]);
    }
    EXPECT_TRUE(solver.store()->degraded());
    EXPECT_GE(solver.store()->write_failures(), 2u);
    bool gauge_seen = false;
    for (const auto& gauge : solver.metrics_registry().snapshot().gauges) {
      if (gauge.name == "store_degraded") {
        gauge_seen = true;
        EXPECT_EQ(gauge.value, 1);
      }
    }
    EXPECT_TRUE(gauge_seen);

    // Fault clears; the next probe (forced here, the write path does the
    // same on its own cadence) rewrites the full live state and heals —
    // including the results whose append failed while degraded.
    fault::disarm_all();
    EXPECT_TRUE(solver.store()->probe_reopen());
    EXPECT_FALSE(solver.store()->degraded());
    const SolveResponse after =
        solver.solve_one(request_for(graphs[4], 200));
    ASSERT_TRUE(after.ok());
    expect_valid_if_ok(after, graphs[4]);
  }
  // A restart proves the heal was durable. The two failed-append records
  // were recovered by the compaction (the KV layer kept them in memory);
  // results produced while writes were being SKIPPED are gone, by design —
  // the store is a best-effort cache, never the source of truth. So at
  // least: 2 recovered + 1 post-heal.
  BatchSolver reopened(options);
  EXPECT_GE(reopened.warm_stats().loaded, 3u);
  const SolveResponse warm = reopened.solve_one(request_for(graphs[0], 300));
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.source, ResponseSource::ResultCache);
  EXPECT_EQ(reopened.engine_solves(), 0u);
  std::remove(path.c_str());
}

/// In-process server + real loopback TCP for the transport schedules.
class ChaosNetTest : public ChaosTest {
 protected:
  void start(LabelingServer::Options server_options = {},
             BatchSolver::Options solver_options = {}) {
    solver_ = std::make_unique<BatchSolver>(solver_options);
    server_ = std::make_unique<LabelingServer>(*solver_, server_options);
    server_->start();
  }

  std::unique_ptr<BatchSolver> solver_;
  std::unique_ptr<LabelingServer> server_;
};

TEST_F(ChaosNetTest, SolveRetryRidesOutAnInjectedDisconnect) {
  start();
  LabelingClient client{ClientOptions{}};
  client.connect("127.0.0.1", server_->port());

  Rng rng(31);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  // One injected reset, wherever it lands (client read/write or server
  // side): the retry path must reconnect and still produce the answer.
  fault::arm(FaultSite::NetDisconnect, 1.0, 3, /*max_fires=*/1);
  const SolveResponse response = client.solve_retry(request_for(graph, 1));
  ASSERT_TRUE(response.ok()) << status_name(response.status) << ": " << response.message;
  expect_valid_if_ok(response, graph);
  EXPECT_EQ(fault::fires(FaultSite::NetDisconnect), 1u);
  client.shutdown();
}

TEST_F(ChaosNetTest, WaitForTimesOutTypedAndTheLateReplyStillArrives) {
  start();
  ClientOptions options;
  LabelingClient client{options};
  client.connect("127.0.0.1", server_->port());

  Rng rng(37);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  // Stall the engine race well past the wait budget.
  fault::arm(FaultSite::EngineStall, 1.0, 11, /*max_fires=*/1, /*param=*/400);
  client.submit(request_for(graph, 7));
  const SolveResponse timed_out = client.wait_for(7, std::chrono::milliseconds{50});
  EXPECT_EQ(timed_out.status, SolveStatus::TimedOut);
  EXPECT_FALSE(timed_out.ok());
  EXPECT_FALSE(timed_out.message.empty());
  // The connection stayed open: the same id, waited for again with a
  // budget that covers the stall, is the real (late) reply.
  const SolveResponse late = client.wait_for(7, std::chrono::milliseconds{10000});
  ASSERT_TRUE(late.ok()) << late.message;
  expect_valid_if_ok(late, graph);
  client.shutdown();
}

TEST_F(ChaosNetTest, BrownoutLadderShedsThenRejectsThenReleases) {
  LabelingServer::Options server_options;
  server_options.brownout_heuristic_pending = 2;
  server_options.brownout_reject_pending = 4;
  server_options.brownout_retry_after_ms = 123;
  BatchSolver::Options solver_options;
  solver_options.request_workers = 1;
  solver_options.portfolio.deadline = std::chrono::milliseconds{150};
  start(server_options, solver_options);

  LabelingClient client{ClientOptions{}};
  client.connect("127.0.0.1", server_->port());

  // Stall every race so the pending gauge climbs past both rungs while a
  // pipelined burst of unique instances lands.
  fault::arm(FaultSite::EngineStall, 1.0, 13, /*max_fires=*/0, /*param=*/120);
  Rng rng(41);
  constexpr std::uint64_t kBurst = 10;
  std::vector<Graph> graphs;
  for (std::uint64_t id = 1; id <= kBurst; ++id) {
    graphs.push_back(random_with_diameter_at_most(12, 2, 0.3, rng));
    client.submit(request_for(graphs.back(), id));
  }
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    const SolveResponse response = client.wait_for(i + 1, std::chrono::milliseconds{20000});
    if (response.status == SolveStatus::RejectedOverload) {
      ++rejected;
      // Rung 2 stamps the retry-after hint, and v3 carries it. The
      // configured base is the floor; with a backlog of stalled races the
      // hint stretches to the predicted pending-work drain time (capped
      // at 60s) — a client told "123ms" against a multi-request stall
      // would only bounce off the gate again.
      EXPECT_GE(response.retry_after_ms, 123u);
      EXPECT_LE(response.retry_after_ms, 60'000u);
    } else {
      ASSERT_TRUE(response.ok()) << status_name(response.status) << ": " << response.message;
      expect_valid_if_ok(response, graphs[static_cast<std::size_t>(i)]);
      ++ok;
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(rejected, 1u);
  const LabelingServer::Counters counters = server_->counters();
  EXPECT_GE(counters.brownout_sheds, 1u);
  EXPECT_EQ(counters.brownout_rejects, rejected);

  // Load gone, fault gone: the ladder must fully release (hysteresis
  // exits at half of each threshold, and pending is now zero) and a fresh
  // request gets the full service again.
  fault::disarm_all();
  const Graph fresh = random_with_diameter_at_most(12, 2, 0.3, rng);
  const SolveResponse after = client.solve_retry(request_for(fresh, 900));
  ASSERT_TRUE(after.ok()) << after.message;
  expect_valid_if_ok(after, fresh);
  EXPECT_EQ(server_->brownout_level(), 0);
  client.shutdown();
}

TEST_F(ChaosNetTest, OneByteReadsAndWritesStillRoundTripExactly) {
  start();
  LabelingClient client{ClientOptions{}};
  client.connect("127.0.0.1", server_->port());

  // Every socket read and write on both sides truncated to one byte:
  // framing must reassemble byte-exactly, just slower.
  fault::arm(FaultSite::NetReadShort, 1.0, 17);
  fault::arm(FaultSite::NetWriteShort, 1.0, 19);
  Rng rng(43);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const Graph graph = random_with_diameter_at_most(10, 2, 0.4, rng);
    const SolveResponse response = client.solve_retry(request_for(graph, id));
    ASSERT_TRUE(response.ok()) << response.message;
    expect_valid_if_ok(response, graph);
  }
  client.shutdown();
}

TEST_F(ChaosNetTest, MixedFaultScheduleNeverCrashesAndNeverLies) {
  BatchSolver::Options solver_options;
  solver_options.portfolio.deadline = std::chrono::milliseconds{150};
  start({}, solver_options);

  ClientOptions options;
  options.request_timeout = std::chrono::milliseconds{15000};
  LabelingClient client{options};
  client.connect("127.0.0.1", server_->port());

  // A layered schedule: flaky short IO throughout, a bounded number of
  // connection resets, and occasional engine stalls — the kind of bad
  // afternoon a deployment actually has.
  fault::arm(FaultSite::NetReadShort, 0.3, 51);
  fault::arm(FaultSite::NetWriteShort, 0.3, 53);
  fault::arm(FaultSite::NetDisconnect, 0.05, 57, /*max_fires=*/3);
  fault::arm(FaultSite::EngineStall, 0.2, 59, /*max_fires=*/0, /*param=*/20);

  Rng rng(61);
  std::uint64_t ok = 0;
  for (std::uint64_t id = 1; id <= 25; ++id) {
    const Graph graph = random_with_diameter_at_most(10, 2, 0.4, rng);
    const SolveResponse response = client.solve_retry(request_for(graph, id));
    if (response.ok()) {
      expect_valid_if_ok(response, graph);
      ++ok;
    } else {
      // Typed failures only — the client never throws on transport loss
      // and the server never sends garbage.
      EXPECT_TRUE(response.status == SolveStatus::TimedOut ||
                  response.status == SolveStatus::TransportDisconnected ||
                  response.status == SolveStatus::RejectedOverload)
          << status_name(response.status);
    }
  }
  // The disconnect budget is 3 resets against 25 requests with 4 attempts
  // each: the schedule must recover to a healthy majority.
  EXPECT_GE(ok, 20u);

  // Fault-free epilogue: full recovery, no residue.
  fault::disarm_all();
  if (!client.connected()) ASSERT_TRUE(client.reconnect());
  const Graph fresh = random_with_diameter_at_most(12, 2, 0.3, rng);
  const SolveResponse after = client.solve_retry(request_for(fresh, 999));
  ASSERT_TRUE(after.ok()) << after.message;
  expect_valid_if_ok(after, fresh);
  EXPECT_EQ(server_->brownout_level(), 0);
  client.shutdown();
}

}  // namespace
}  // namespace lptsp
