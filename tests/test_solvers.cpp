#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lptsp {
namespace {

const std::vector<Engine> kAllEngines{
    Engine::BruteForce,        Engine::HeldKarp,    Engine::Christofides,
    Engine::DoubleMst,         Engine::NearestNeighbor, Engine::NearestNeighbor2Opt,
    Engine::GreedyEdge,        Engine::LinKernighanStyle, Engine::ChainedLK,
    Engine::SimulatedAnnealing, Engine::BranchBound,
};

TEST(EngineNames, AllDistinctAndNonEmpty) {
  std::set<std::string> names;
  for (const Engine engine : kAllEngines) {
    const std::string name = engine_name(engine);
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kAllEngines.size());
}

class EngineSweep : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam() * 137 + 41)};
};

TEST_P(EngineSweep, AllEnginesProduceValidLabelings) {
  const Graph graph = random_with_diameter_at_most(10, 2, 0.3, rng_);
  const PVec p = PVec::L21();
  SolveOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam() + 1);

  Weight exact_span = -1;
  for (const Engine engine : kAllEngines) {
    options.engine = engine;
    const SolveResult result = solve_labeling(graph, p, options);
    // solve_labeling verifies internally; double-check here regardless.
    EXPECT_TRUE(is_valid_labeling(graph, p, result.labeling)) << engine_name(engine);
    EXPECT_EQ(result.labeling.span(), result.span) << engine_name(engine);
    EXPECT_TRUE(is_valid_order(result.order, graph.n()));
    EXPECT_GE(result.seconds, 0.0);
    if (engine == Engine::HeldKarp || engine == Engine::BruteForce ||
        engine == Engine::BranchBound) {
      EXPECT_TRUE(result.optimal);
      if (exact_span >= 0) {
        EXPECT_EQ(result.span, exact_span);
      }
      exact_span = result.span;
    }
  }

  // Every heuristic is lower-bounded by the exact span.
  for (const Engine engine : kAllEngines) {
    options.engine = engine;
    EXPECT_GE(solve_labeling(graph, p, options).span, exact_span) << engine_name(engine);
  }
}

TEST_P(EngineSweep, HigherDimensionP) {
  const Graph graph = random_with_diameter_at_most(9, 3, 0.25, rng_);
  const PVec p({2, 2, 1});
  SolveOptions options;
  options.engine = Engine::HeldKarp;
  const SolveResult exact = solve_labeling(graph, p, options);
  options.engine = Engine::ChainedLK;
  const SolveResult heuristic = solve_labeling(graph, p, options);
  EXPECT_GE(heuristic.span, exact.span);
  EXPECT_TRUE(is_valid_labeling(graph, p, heuristic.labeling));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSweep, ::testing::Range(0, 6));

TEST(SolveLabeling, SingleVertex) {
  const SolveResult result = solve_labeling(Graph(1), PVec::L21());
  EXPECT_EQ(result.span, 0);
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.labeling.labels, (std::vector<Weight>{0}));
}

TEST(SolveLabeling, PropagatesReductionPreconditions) {
  EXPECT_THROW(solve_labeling(path_graph(6), PVec::L21()), precondition_error);
  EXPECT_THROW(solve_labeling(star_graph(5), PVec({3, 1})), precondition_error);
}

TEST(SolveLabeling, SeedChangesAreDeterministic) {
  Rng rng(9);
  const Graph graph = random_with_diameter_at_most(12, 2, 0.3, rng);
  SolveOptions options;
  options.engine = Engine::ChainedLK;
  options.seed = 5;
  const Weight first = solve_labeling(graph, PVec::L21(), options).span;
  const Weight second = solve_labeling(graph, PVec::L21(), options).span;
  EXPECT_EQ(first, second);
}

TEST(SolveLabeling, LabelsArePermutationConsistent) {
  // Labels sorted by the returned order must be non-decreasing (Claim 1).
  Rng rng(11);
  const Graph graph = random_with_diameter_at_most(9, 2, 0.35, rng);
  SolveOptions options;
  options.engine = Engine::LinKernighanStyle;
  const SolveResult result = solve_labeling(graph, PVec::L21(), options);
  for (std::size_t i = 1; i < result.order.size(); ++i) {
    EXPECT_LE(result.labeling.labels[static_cast<std::size_t>(result.order[i - 1])],
              result.labeling.labels[static_cast<std::size_t>(result.order[i])]);
  }
  EXPECT_EQ(result.labeling.labels[static_cast<std::size_t>(result.order.front())], 0);
}

}  // namespace
}  // namespace lptsp
